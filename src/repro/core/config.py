"""Execution parameters for module-network learning."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior
from repro.scoring.split_score import DEFAULT_BETA_GRID


@dataclass(frozen=True)
class ParallelConfig:
    """The execution-backend knobs shared by every learner.

    Consolidates what used to be flat fields duplicated across
    :class:`LearnerConfig` (``n_workers``/``parallel_mode``/``schedule``)
    and :class:`repro.genomica.learner.GenomicaConfig` (``n_workers``)
    into one composable value embedded in both as ``config.parallel``.
    """

    #: worker processes (1 = in-process sequential, 0 = every core the
    #: process affinity mask allows); >1 runs on one persistent
    #: :class:`repro.parallel.executor.TaskPoolExecutor` — a single pool
    #: and a single shared-memory matrix transfer per ``learn`` call
    n_workers: int = 1
    #: decomposition: "module" (whole modules per worker), "split"
    #: (fine-grained candidate-split tasks) or "auto" (cost heuristic)
    mode: str = "auto"
    #: dispatch: "static" contiguous blocks or "dynamic" queue pulling
    #: (largest-module-first in module mode)
    schedule: str = "dynamic"
    #: dynamic dispatch locality: with multiple NUMA domains, feed each
    #: domain its own affine work queue and let idle workers steal from
    #: the most-loaded foreign domain (``True``, the default); ``False``
    #: keeps the single shared queue.  Pure placement — results are
    #: bit-identical either way, and single-domain (flat) machines take
    #: the shared-queue path regardless.
    steal: bool = True
    #: default checkpoint directory for ``learn(checkpoint_dir=...)``
    #: (the explicit argument wins when both are given)
    checkpoint_dir: str | None = None
    #: machine model: "auto" (probe sysfs, fall back flat), "flat"
    #: (single NUMA domain, fixed kernel chunk — the pre-topology
    #: behaviour), or an explicit
    #: :class:`repro.parallel.topology.MachineTopology`
    topology: object = "auto"
    #: split-scoring backend: "numpy" (the oracle), "native" (the
    #: certified compiled extension; constructing a kernel raises when it
    #: is unavailable) or "auto" (use native when it builds, loads and
    #: passes bit-identity certification, else fall back to NumPy).
    #: Backends are bit-identical by construction, so this is purely a
    #: speed knob.
    kernel_backend: str = "auto"
    #: shard nodes (1 = single-host, the pool executor alone); >1 routes
    #: Task 1 chains and Task 3 modules through the
    #: :class:`repro.parallel.sharding.ShardedExecutor` process-node tier,
    #: each node running its own ``n_workers``-worker pool.  Pure
    #: placement: results are bit-identical for any node count.
    n_nodes: int = 1
    #: shard transport: "socket" (real OS processes over length-prefixed
    #: TCP frames on localhost) or "thread" (in-process fallback over the
    #: :mod:`repro.parallel.comm` mailboxes — same protocol, no processes)
    node_backend: str = "socket"
    #: byte budget of the process-shared split-score cache
    #: (:class:`repro.scoring.score_cache.SharedScoreCache`): 0 (default)
    #: keeps the per-kernel-instance memo only, >0 installs one bounded
    #: LRU store per scoring process (driver and each pool worker) so
    #: identical nodes across jobs share grouping tables and score memos.
    #: Cached scores are deterministic functions of the node content, so
    #: this is purely a speed knob — results are bit-identical either way.
    score_cache_bytes: int = 0

    def __post_init__(self) -> None:
        if self.score_cache_bytes < 0:
            raise ValueError("score_cache_bytes must be non-negative")
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative (0 = all cores)")
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be at least 1")
        if self.node_backend not in ("socket", "thread"):
            raise ValueError("node_backend must be 'socket' or 'thread'")
        if self.mode not in ("auto", "module", "split"):
            raise ValueError("mode must be 'auto', 'module' or 'split'")
        if self.schedule not in ("static", "dynamic"):
            raise ValueError("schedule must be 'static' or 'dynamic'")
        if not isinstance(self.steal, bool):
            raise ValueError("steal must be a bool")
        if self.kernel_backend not in ("auto", "numpy", "native"):
            raise ValueError(
                "kernel_backend must be 'auto', 'numpy' or 'native'"
            )
        topology = self.topology
        if isinstance(topology, str):
            if topology not in ("auto", "flat"):
                raise ValueError("topology must be 'auto', 'flat' or a MachineTopology")
        elif not hasattr(topology, "numa_domains"):
            raise ValueError("topology must be 'auto', 'flat' or a MachineTopology")

    def resolve_n_workers(self) -> int:
        """The effective worker count (0 means every available core).

        "Every available core" honours the process affinity mask —
        containerized CI typically grants fewer cores than
        ``os.cpu_count()`` reports for the host, and oversubscribing the
        mask just makes workers time-slice each other.
        """
        if self.n_workers != 0:
            return self.n_workers
        import os

        getaffinity = getattr(os, "sched_getaffinity", None)
        if getaffinity is not None:
            try:
                return max(1, len(getaffinity(0)))
            except OSError:  # pragma: no cover - exotic kernels
                pass
        return max(1, os.cpu_count() or 1)

    def resolve_topology(self):
        """The :class:`~repro.parallel.topology.MachineTopology` to use."""
        # Lazy import: repro.parallel pulls in the engine/learner stack.
        from repro.parallel.topology import resolve_topology

        return resolve_topology(self.topology)


@dataclass(frozen=True)
class LearnerConfig:
    """All knobs of the three Lemon-Tree tasks.

    The defaults correspond to the paper's minimum-run-time experimental
    configuration (Section 5.1): a single GaneSH run with one update step,
    one regression tree per module, and every variable as a candidate
    parent for every module.
    """

    # -- task 1: GaneSH co-clustering (Section 2.2.1) --------------------
    #: number of independent GaneSH runs (the paper's G)
    n_ganesh_runs: int = 1
    #: update steps per run (the paper's U)
    n_update_steps: int = 1
    #: initial variable clusters K0: an int, a float in (0, 1) interpreted
    #: as a fraction of n, or ``None`` -> n // 2 (Lemon-Tree's default when
    #: the user provides no cluster count)
    init_var_clusters: int | float | None = None

    # -- task 2: consensus clustering (Section 2.2.2) --------------------
    #: co-occurrence weights below this threshold are zeroed
    consensus_threshold: float = 0.25
    #: optional cap on the number of consensus modules
    max_modules: int | None = None

    # -- task 3: learning the modules (Section 2.2.3) --------------------
    #: update steps of the per-module observation-only GaneSH run
    tree_update_steps: int = 1
    #: burn-in steps before observation clusterings are sampled (paper's B)
    tree_burn_in: int = 0
    #: candidate parent variable indices (``None`` -> all variables)
    candidate_parents: tuple[int, ...] | None = None
    #: splits selected per node per sampling mode (the paper's J)
    n_splits_per_node: int = 2
    #: maximum discrete sampling steps per candidate split (the paper's S)
    max_sampling_steps: int = 10
    #: consecutive rejections after which a split's chain stops early
    sampling_stop_repeats: int = 3
    #: the discrete grid of sigmoid steepness values explored per split
    beta_grid: tuple[float, ...] = DEFAULT_BETA_GRID

    # -- execution backend (persistent task-pool executor) ----------------
    parallel: ParallelConfig = field(default_factory=ParallelConfig)

    # -- shared -----------------------------------------------------------
    prior: NormalGammaPrior = field(default_factory=lambda: DEFAULT_PRIOR)
    #: RNG backend: "philox" (default) or "mrg"
    rng_backend: str = "philox"

    def __post_init__(self) -> None:
        if self.n_ganesh_runs < 1:
            raise ValueError("n_ganesh_runs must be at least 1")
        if self.n_update_steps < 1:
            raise ValueError("n_update_steps must be at least 1")
        if self.tree_update_steps < 1:
            raise ValueError("tree_update_steps must be at least 1")
        if not 0 <= self.tree_burn_in:
            raise ValueError("tree_burn_in must be non-negative")
        if self.n_splits_per_node < 1:
            raise ValueError("n_splits_per_node must be at least 1")
        if self.max_sampling_steps < 1:
            raise ValueError("max_sampling_steps must be at least 1")
        if not 0.0 <= self.consensus_threshold <= 1.0:
            raise ValueError("consensus_threshold must lie in [0, 1]")
        if self.rng_backend not in ("philox", "mrg"):
            raise ValueError("rng_backend must be 'philox' or 'mrg'")
        if not isinstance(self.parallel, ParallelConfig):
            raise ValueError("parallel must be a ParallelConfig")

    def resolve_init_clusters(self, n_vars: int) -> int:
        """The initial variable-cluster count K0 for ``n_vars`` variables."""
        value = self.init_var_clusters
        if value is None:
            k0 = max(1, n_vars // 2)
        elif isinstance(value, float) and 0.0 < value < 1.0:
            k0 = max(1, int(n_vars * value))
        elif isinstance(value, (int, float)) and value >= 1:
            k0 = int(value)
        else:
            raise ValueError(f"invalid init_var_clusters: {value!r}")
        return min(k0, n_vars)

    def resolve_n_workers(self) -> int:
        """The effective worker count (0 means every available core)."""
        return self.parallel.resolve_n_workers()

    def resolve_candidate_parents(self, n_vars: int) -> tuple[int, ...]:
        """The candidate-parent list, defaulting to every variable."""
        if self.candidate_parents is None:
            return tuple(range(n_vars))
        for parent in self.candidate_parents:
            if not 0 <= parent < n_vars:
                raise ValueError(f"candidate parent {parent} out of range")
        return tuple(self.candidate_parents)

    def with_updates(self, **changes) -> "LearnerConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def parents_from_names(names: Sequence[str], var_names: Sequence[str]) -> tuple[int, ...]:
    """Resolve candidate-parent names to variable indices."""
    index = {name: i for i, name in enumerate(var_names)}
    missing = [name for name in names if name not in index]
    if missing:
        raise KeyError(f"unknown candidate parents: {missing[:5]}")
    return tuple(index[name] for name in names)
