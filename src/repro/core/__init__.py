"""The Lemon-Tree module-network learner.

* :class:`~repro.core.config.LearnerConfig` — all execution parameters of
  the three Lemon-Tree tasks (Section 2.2).
* :class:`~repro.core.learner.LemonTreeLearner` — the optimized sequential
  implementation (NumPy-vectorised), the paper's "our optimized C++
  sequential implementation" and the ``T_1`` baseline of every scaling
  metric.
* :class:`~repro.core.reference.ReferenceLearner` — the pure-Python
  stand-in for the Java *Lemon-Tree* baseline: same algorithm, same RNG
  call sequence, identical networks, deliberately unvectorised inner loops.
* :mod:`~repro.core.output` — JSON and XML writers/readers for learned
  networks.
"""

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LearnResult, LemonTreeLearner
from repro.core.output import network_from_json, network_to_json, network_to_xml
from repro.core.reference import ReferenceLearner

__all__ = [
    "LearnerConfig",
    "ParallelConfig",
    "LemonTreeLearner",
    "LearnResult",
    "ReferenceLearner",
    "network_to_json",
    "network_from_json",
    "network_to_xml",
]
