"""The optimized sequential module-network learner.

This is the reproduction's counterpart of the paper's optimized C++
implementation (Section 4.1): the full three-task Lemon-Tree pipeline with
NumPy-vectorised scoring.  It serves as ``T_1`` — the best sequential
implementation — in every scaling metric, and as the source of the work
traces the parallel projections replay.

Randomness is drawn from named streams so that execution order between
independent units (GaneSH runs, modules) carries no hidden coupling:

* ``("ganesh", g)`` — the replicated stream of GaneSH run ``g``;
* ``("modules", module_id)`` — observation clustering and split selection
  for one module;
* ``("splits", module_id)`` — the indexed stream addressing each candidate
  split's private sampling draws by its enumeration index.

The pure-Python :class:`repro.core.reference.ReferenceLearner` and the SPMD
:class:`repro.parallel.engine.ParallelLearner` consume the same streams in
the same order, which is what makes all three produce identical networks
(the paper's consistency requirement, Sections 3 and 4.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.consensus import consensus_clusters
from repro.core.config import LearnerConfig
from repro.datatypes import ExpressionMatrix, Module, ModuleNetwork, TaskTimes
from repro.ganesh.coclustering import (
    SweepHooks,
    run_obs_only_ganesh,
    run_replicated_ganesh,
)
from repro.rng.streams import GibbsRandom, IndexedStream, make_stream
from repro.scoring.kernel import consume_kernel_totals
from repro.scoring.split_score import SplitScorer
from repro.trees.hierarchy import build_tree_structure
from repro.trees.parents import accumulate_parent_scores
from repro.trees.splits import score_node_splits, select_node_splits


def _require_complete(matrix: ExpressionMatrix) -> None:
    """Reject NaN (missing-data) matrices at the pipeline boundary.

    The incremental suffstats algebra silently poisons every downstream
    score once a NaN enters it, so missingness must be resolved *before*
    learning rather than discovered as a corrupt network afterwards.
    """
    if np.isnan(matrix.values).any():
        raise ValueError(
            "expression matrix contains missing values (NaN); call "
            "matrix.impute_missing() or drop the affected observations "
            "before learning"
        )


@dataclass
class LearnResult:
    """A learned network plus run metadata."""

    network: ModuleNetwork
    task_times: TaskTimes
    #: work trace (present when a WorkTrace was passed to ``learn``)
    trace: object | None = None
    stats: dict = field(default_factory=dict)


class LemonTreeLearner:
    """Sequential, vectorised Lemon-Tree learner."""

    def __init__(self, config: LearnerConfig | None = None) -> None:
        self.config = config or LearnerConfig()

    # -- pipeline ---------------------------------------------------------
    def learn(
        self,
        matrix: ExpressionMatrix,
        seed: int,
        trace=None,
        checkpoint_dir=None,
        executor=None,
    ) -> LearnResult:
        """Learn a module network from ``matrix`` with the given seed.

        ``trace`` may be a :class:`repro.parallel.trace.WorkTrace`; when
        given, per-superstep work vectors and task wall-times are recorded
        for parallel run-time projection.

        ``checkpoint_dir`` makes the run resumable: Task 1 persists each
        GaneSH run to ``ganesh_<g>.npz`` and Task 3 each learned module to
        ``module_<id>.json``; a restarted run skips whatever is already on
        disk and produces the identical network.  It defaults to
        ``config.parallel.checkpoint_dir`` when not given.

        With ``config.parallel.n_workers > 1`` a single persistent worker
        pool (:class:`repro.parallel.executor.TaskPoolExecutor`) serves
        both Task 1 (the G independent GaneSH runs) and Task 3 (module
        learning): one pool construction, one shared-memory matrix
        transfer, per ``learn`` call.

        ``executor`` lends an externally owned executor (the service
        daemon's warm pool) for this invocation: the learner dispatches on
        it but never closes it, so the pool — and each worker's shared
        score cache — survives into the next job.  The caller is
        responsible for the executor matching ``(matrix, config, seed,
        checkpoint_dir)``.
        """
        _require_complete(matrix)
        config = self.config
        if checkpoint_dir is None:
            checkpoint_dir = config.parallel.checkpoint_dir
        data = matrix.values
        self._ensure_score_cache()
        if trace is not None:
            # Discard counters accumulated by earlier un-traced runs in this
            # process so the trace covers exactly this invocation.
            consume_kernel_totals()
        owns_executor = executor is None
        if owns_executor:
            executor = self._make_executor(data, seed, checkpoint_dir)
        try:
            t0 = time.perf_counter()
            samples = self._task_ganesh(
                data, seed, trace, executor=executor, checkpoint_dir=checkpoint_dir
            )
            t1 = time.perf_counter()
            modules_members = self._task_consensus(samples)
            t2 = time.perf_counter()
            modules = self._task_modules(
                data, modules_members, seed, trace, checkpoint_dir, executor=executor
            )
            t3 = time.perf_counter()
        finally:
            if owns_executor and executor is not None:
                executor.close()

        if trace is not None:
            trace.mark_time("ganesh", t1 - t0)
            trace.mark_time("consensus", t2 - t1)
            trace.mark_time("modules", t3 - t2)
            trace.n_ganesh_runs = config.n_ganesh_runs
            # Kernels scored in *this* process (serial path, or driver-side
            # work) accumulate in the process-global counters; pool workers
            # ship their deltas with each task result.
            trace.mark_kernel(consume_kernel_totals())

        network = ModuleNetwork(modules, matrix.var_names, matrix.n_obs)
        times = TaskTimes(ganesh=t1 - t0, consensus=t2 - t1, modules=t3 - t2)
        stats = {
            "n_modules": len(modules),
            "module_sizes": [m.size for m in modules],
            "n_trees": sum(len(m.trees) for m in modules),
            "n_internal_nodes": sum(
                len(t.internal_nodes()) for m in modules for t in m.trees
            ),
        }
        if executor is not None:
            stats["executor"] = {
                "n_workers": executor.n_workers,
                "worker_inits": executor.worker_inits(),
                "pools_constructed": executor.stats.pools_constructed,
                "matrix_transfers": executor.stats.matrix_transfers,
            }
        return LearnResult(network=network, task_times=times, trace=trace, stats=stats)

    def _ensure_score_cache(self) -> None:
        """Install the driver-process shared score cache when configured.

        Pool workers install their own in ``_executor_init``; this covers
        the serial path and driver-side scoring, where kernels are built
        in this process.  The store persists across ``learn`` calls by
        design — that cross-job reuse is the service's warm path.
        """
        bytes_ = getattr(self.config.parallel, "score_cache_bytes", 0)
        if bytes_ > 0:
            from repro.scoring.kernel import ensure_shared_score_cache

            ensure_shared_score_cache(bytes_)

    def _make_executor(self, data: np.ndarray, seed: int, checkpoint_dir=None):
        """One persistent executor for the whole invocation, or ``None``
        for the sequential in-process path.

        ``config.parallel.n_nodes > 1`` routes through the process-node
        shard tier (:class:`repro.parallel.sharding.ShardedExecutor`),
        each node running its own ``n_workers``-worker pool; otherwise a
        single-host :class:`~repro.parallel.executor.TaskPoolExecutor`
        when more than one worker is configured.
        """
        config = self.config
        parents = np.asarray(
            config.resolve_candidate_parents(data.shape[0]), dtype=np.int64
        )
        if config.parallel.n_nodes > 1:
            from repro.parallel.sharding import ShardedExecutor

            return ShardedExecutor(
                data, parents, config, seed, checkpoint_dir=checkpoint_dir
            )
        if config.resolve_n_workers() <= 1:
            return None
        from repro.parallel.executor import TaskPoolExecutor

        return TaskPoolExecutor(
            data, parents, config, seed, checkpoint_dir=checkpoint_dir
        )

    # -- task-level public API ---------------------------------------------
    # Lemon-Tree is driven task by task in practice (separate invocations
    # with intermediate files — often separate cluster jobs for the G
    # GaneSH runs); these entry points expose the same workflow.

    def sample_clusterings(
        self, matrix: ExpressionMatrix, seed: int, trace=None, checkpoint_dir=None
    ) -> list[np.ndarray]:
        """Task 1 only: the ensemble of GaneSH variable-cluster samples.

        With ``config.parallel.n_workers > 1`` the G runs execute concurrently on
        the persistent pool executor; because every run draws only its own
        ``("ganesh", g)`` stream the ensemble is bit-identical to a
        sequential pass.  ``checkpoint_dir`` persists each completed run to
        ``ganesh_<g>.npz`` so an interrupted task re-executes only the
        missing runs.
        """
        _require_complete(matrix)
        if checkpoint_dir is None:
            checkpoint_dir = self.config.parallel.checkpoint_dir
        executor = self._make_executor(matrix.values, seed, checkpoint_dir)
        try:
            return self._task_ganesh(
                matrix.values,
                seed,
                trace,
                executor=executor,
                checkpoint_dir=checkpoint_dir,
            )
        finally:
            if executor is not None:
                executor.close()

    def consensus(self, samples: list[np.ndarray]) -> list[list[int]]:
        """Task 2 only: consensus modules from a clustering ensemble."""
        return self._task_consensus([np.asarray(s) for s in samples])

    def learn_from_modules(
        self,
        matrix: ExpressionMatrix,
        modules_members: list[list[int]],
        seed: int,
        trace=None,
        checkpoint_dir=None,
    ) -> LearnResult:
        """Task 3 only: trees, splits and parents for given modules.

        ``modules_members`` typically comes from :meth:`consensus`, but any
        disjoint variable grouping (e.g. curated gene sets) is accepted —
        matching Lemon-Tree's ability to learn regulators for externally
        provided modules.

        ``checkpoint_dir`` enables resumable execution of this multi-day
        task (the paper's sequential runs take weeks): each completed
        module is written to ``module_<id>.json`` and an interrupted run
        restarted with the same directory skips finished modules.  Because
        every module consumes its own named random streams, a resumed run
        produces exactly the network an uninterrupted run would.

        With ``config.parallel.n_workers > 1`` the modules are learned on the
        persistent shared-memory executor
        (:class:`repro.parallel.executor.ModuleExecutor`) — same named
        streams, so the network is bit-identical to a sequential run.
        """
        _require_complete(matrix)
        if checkpoint_dir is None:
            checkpoint_dir = self.config.parallel.checkpoint_dir
        self._ensure_score_cache()
        seen: set[int] = set()
        for members in modules_members:
            for var in members:
                if not 0 <= var < matrix.n_vars:
                    raise ValueError(f"module member {var} out of range")
                if var in seen:
                    raise ValueError(f"variable {var} appears in two modules")
                seen.add(var)
        t0 = time.perf_counter()
        if trace is not None:
            consume_kernel_totals()  # discard earlier runs' counters
        modules = self._task_modules(
            matrix.values, modules_members, seed, trace, checkpoint_dir
        )
        elapsed = time.perf_counter() - t0
        if trace is not None:
            trace.mark_time("modules", elapsed)
            trace.mark_kernel(consume_kernel_totals())
        network = ModuleNetwork(modules, matrix.var_names, matrix.n_obs)
        return LearnResult(
            network=network,
            task_times=TaskTimes(ganesh=0.0, consensus=0.0, modules=elapsed),
            trace=trace,
            stats={"n_modules": len(modules)},
        )

    # -- task 1: GaneSH co-clustering --------------------------------------
    def _task_ganesh(
        self,
        data: np.ndarray,
        seed: int,
        trace,
        executor=None,
        checkpoint_dir=None,
    ) -> list[np.ndarray]:
        config = self.config
        if executor is not None and config.n_ganesh_runs > 1:
            return executor.sample_ganesh_runs(config.n_ganesh_runs, trace=trace)
        checkpoints = _GaneshCheckpoints(
            checkpoint_dir, seed, config, data.shape[0]
        )
        samples: list[np.ndarray] = []
        for g in range(config.n_ganesh_runs):
            labels = checkpoints.load(g)
            if labels is None:
                labels = run_replicated_ganesh(
                    data,
                    seed,
                    g,
                    n_update_steps=config.n_update_steps,
                    init_var_clusters=config.resolve_init_clusters(data.shape[0]),
                    prior=config.prior,
                    rng_backend=config.rng_backend,
                    hooks=_hooks_for(trace, run=g),
                )
                checkpoints.store(g, labels)
            samples.append(labels)
        return samples

    # -- task 2: consensus clustering ---------------------------------------
    def _task_consensus(self, samples: list[np.ndarray]) -> list[list[int]]:
        return consensus_clusters(
            samples,
            threshold=self.config.consensus_threshold,
            max_clusters=self.config.max_modules,
        )

    # -- task 3: learning the modules ----------------------------------------
    def _task_modules(
        self,
        data: np.ndarray,
        modules_members: list[list[int]],
        seed: int,
        trace,
        checkpoint_dir=None,
        executor=None,
    ) -> list[Module]:
        config = self.config
        n_vars = data.shape[0]
        parents = np.asarray(config.resolve_candidate_parents(n_vars), dtype=np.int64)

        if executor is not None and modules_members:
            return executor.learn_modules(modules_members, trace=trace)
        if config.parallel.n_nodes > 1 and modules_members:
            from repro.parallel.sharding import ShardedExecutor

            with ShardedExecutor(
                data, parents, config, seed, checkpoint_dir=checkpoint_dir
            ) as executor:
                return executor.learn_modules(modules_members, trace=trace)
        if config.resolve_n_workers() > 1 and modules_members:
            from repro.parallel.executor import TaskPoolExecutor

            with TaskPoolExecutor(
                data, parents, config, seed, checkpoint_dir=checkpoint_dir
            ) as executor:
                return executor.learn_modules(modules_members, trace=trace)

        scorer = SplitScorer(
            beta_grid=config.beta_grid,
            max_steps=config.max_sampling_steps,
            stop_repeats=config.sampling_stop_repeats,
        )
        checkpoints = _ModuleCheckpoints(checkpoint_dir, seed, config)

        modules: list[Module] = []
        for module_id, members in enumerate(modules_members):
            module = checkpoints.load(module_id, members)
            if module is None:
                module = learn_single_module(
                    data, module_id, members, parents, scorer, config, seed, trace
                )
                checkpoints.store(module)
            modules.append(module)
        return modules

    def _learn_one_module(
        self,
        data: np.ndarray,
        module_id: int,
        members: list[int],
        parents: np.ndarray,
        scorer: SplitScorer,
        seed: int,
        trace,
    ) -> Module:
        return learn_single_module(
            data, module_id, members, parents, scorer, self.config, seed, trace
        )


def learn_single_module(
    data: np.ndarray,
    module_id: int,
    members: list[int],
    parents: np.ndarray,
    scorer: SplitScorer,
    config: LearnerConfig,
    seed: int,
    trace=None,
) -> Module:
    """Learn one module end to end (obs clustering, trees, splits, parents).

    A module consumes only its own named streams (``("modules", id)`` and
    ``("splits", id)``), so this function is self-contained: the executor's
    workers call it on whole modules concurrently and obtain bit-identical
    results to the sequential loop above.
    """
    block = data[members]
    mrng = GibbsRandom(
        make_stream(seed, "modules", module_id, backend=config.rng_backend)
    )
    hooks = _hooks_for(trace)
    istream = IndexedStream(
        make_stream(seed, "splits", module_id, backend=config.rng_backend),
        scorer.draws_per_item,
    )

    # Step 1: sample observation clusterings, agglomerate into trees.
    obs_samples = run_obs_only_ganesh(
        block,
        mrng,
        n_update_steps=config.tree_update_steps,
        burn_in=config.tree_burn_in,
        prior=config.prior,
        hooks=hooks,
    )
    trees = [
        build_tree_structure(block, labels, module_id, config.prior, hooks)
        for labels in obs_samples
    ]

    # Steps 2-3: score candidate splits, select, aggregate parents.
    module = Module(module_id=module_id, members=list(members), trees=trees)
    split_base = 0
    all_weighted = []
    all_uniform = []
    for tree_index, tree in enumerate(trees):
        for node in tree.internal_nodes():
            scores = score_node_splits(
                data,
                module_id,
                tree_index,
                node,
                parents,
                scorer,
                istream,
                split_base,
            )
            split_base += scores.n_splits
            if trace is not None:
                trace.record(
                    "modules.split_scoring",
                    scores.work_units(),
                    # The whole phase shares one segmented scan and one
                    # all-gather (Section 3.2.3); charge them per node so
                    # the per-p comm term scales with the node count.
                    n_collectives=1,
                    words=2 * config.n_splits_per_node,
                )
            weighted, uniform = select_node_splits(
                data, scores, mrng, config.n_splits_per_node
            )
            node.weighted_splits = weighted
            node.uniform_splits = uniform
            all_weighted.extend(weighted)
            all_uniform.extend(uniform)

    module.weighted_parents = accumulate_parent_scores(all_weighted)
    module.uniform_parents = accumulate_parent_scores(all_uniform)
    if trace is not None and split_base:
        # Learn-Parents: segmented scan + all-gather over selected splits.
        trace.record(
            "modules.parents",
            np.array([len(all_weighted) + len(all_uniform)], dtype=np.float64),
            n_collectives=2,
            words=len(all_weighted) + len(all_uniform),
        )
    return module


class _ModuleCheckpoints:
    """Per-module checkpoint store for resumable task-3 execution.

    Checkpoints are keyed by (seed, configuration fingerprint, module
    members): a checkpoint written under different learning parameters or
    for a different module composition is ignored rather than silently
    reused.

    With a ``writer`` (an :class:`repro.parallel.checkpoint_writer.
    AsyncCheckpointWriter`), :meth:`store` serializes the payload up front
    and hands the file write + atomic rename to the background thread so
    the caller never stalls on the filesystem.
    """

    def __init__(self, directory, seed: int, config: LearnerConfig, writer=None) -> None:
        from pathlib import Path

        self.writer = writer
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = {
            "seed": seed,
            "rng_backend": config.rng_backend,
            "tree_update_steps": config.tree_update_steps,
            "tree_burn_in": config.tree_burn_in,
            "n_splits_per_node": config.n_splits_per_node,
            "max_sampling_steps": config.max_sampling_steps,
            "sampling_stop_repeats": config.sampling_stop_repeats,
            "beta_grid": list(config.beta_grid),
            "candidate_parents": (
                list(config.candidate_parents)
                if config.candidate_parents is not None
                else None
            ),
        }

    def _path(self, module_id: int):
        return self.directory / f"module_{module_id}.json"

    def load(self, module_id: int, members: list[int]) -> Module | None:
        import json

        from repro.core.output import _node_from_dict

        if self.directory is None:
            return None
        path = self._path(module_id)
        if not path.exists():
            return None
        payload = json.loads(path.read_text())
        if payload.get("fingerprint") != self.fingerprint:
            return None
        if payload.get("members") != list(members):
            return None
        from repro.datatypes import RegressionTree

        module = Module(
            module_id=module_id,
            members=list(members),
            trees=[
                RegressionTree(module_id=module_id, root=_node_from_dict(tree))
                for tree in payload["trees"]
            ],
            weighted_parents={
                int(k): float(v) for k, v in payload["weighted_parents"].items()
            },
            uniform_parents={
                int(k): float(v) for k, v in payload["uniform_parents"].items()
            },
        )
        return module

    def store(self, module: Module) -> None:
        import json

        from repro.core.output import _node_to_dict

        if self.directory is None:
            return
        payload = {
            "fingerprint": self.fingerprint,
            "members": module.members,
            "trees": [_node_to_dict(tree.root) for tree in module.trees],
            "weighted_parents": {
                str(k): v for k, v in module.weighted_parents.items()
            },
            "uniform_parents": {
                str(k): v for k, v in module.uniform_parents.items()
            },
        }
        path = self._path(module.module_id)
        tmp = path.with_suffix(".json.tmp")
        text = json.dumps(payload)

        def write() -> None:
            tmp.write_text(text)
            tmp.replace(path)  # atomic: a killed run never leaves torn files

        if self.writer is not None:
            self.writer.submit(write)
        else:
            write()


class _GaneshCheckpoints:
    """Per-run checkpoint store for resumable Task 1 execution.

    Each completed GaneSH run ``g`` is persisted to ``ganesh_<g>.npz``
    (labels array plus a JSON fingerprint).  Like the module checkpoints, a
    file written under a different seed, RNG backend, sweep configuration
    or data shape is ignored rather than silently reused — and because
    every run consumes only its ``("ganesh", g)`` stream, a resumed task
    produces exactly the ensemble an uninterrupted one would.

    Like the module store, an optional ``writer`` moves the ``.npz`` write
    and atomic rename onto a background thread.
    """

    def __init__(
        self, directory, seed: int, config: LearnerConfig, n_vars: int, writer=None
    ) -> None:
        from pathlib import Path

        self.writer = writer
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        prior = config.prior
        self.fingerprint = {
            "seed": seed,
            "rng_backend": config.rng_backend,
            "n_update_steps": config.n_update_steps,
            "init_var_clusters": config.resolve_init_clusters(n_vars),
            "prior": [prior.mu0, prior.lambda0, prior.alpha0, prior.beta0],
            "n_vars": n_vars,
        }

    def _path(self, run_index: int):
        return self.directory / f"ganesh_{run_index}.npz"

    def load(self, run_index: int) -> np.ndarray | None:
        import json

        if self.directory is None:
            return None
        path = self._path(run_index)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                if json.loads(str(payload["meta"])) != self.fingerprint:
                    return None
                return np.asarray(payload["labels"], dtype=np.int64)
        except (OSError, ValueError, KeyError):  # torn or foreign file
            return None

    def store(self, run_index: int, labels: np.ndarray) -> None:
        import json

        if self.directory is None:
            return
        path = self._path(run_index)
        tmp = path.with_suffix(".npz.tmp.npz")  # savez requires .npz
        meta = json.dumps(self.fingerprint)
        # Private copy: the caller may mutate its labels after store returns.
        labels = np.array(labels, dtype=np.int64, copy=True)

        def write() -> None:
            np.savez_compressed(tmp, meta=meta, labels=labels)
            tmp.replace(path)  # atomic: a killed run never leaves torn files

        if self.writer is not None:
            self.writer.submit(write)
        else:
            write()


def _hooks_for(trace, run: int | None = None) -> SweepHooks:
    if trace is None:
        return SweepHooks()
    if run is None:
        return SweepHooks(record=lambda phase, costs, nc=2: trace.record(phase, costs, nc))
    return SweepHooks(
        record=lambda phase, costs, nc=2: trace.record(phase, costs, nc, run=run)
    )
