"""Pure-Python reference learner — the *Lemon-Tree* baseline stand-in.

The paper's Table 1 compares the Java Lemon-Tree against their optimized
C++ implementation: the same algorithm, aligned PRNGs, bit-identical output
networks, and a 3.6-3.8x constant-factor run-time gap from the
interpreted-vs-compiled implementation difference (Section 4.1).

This class plays the Java role against :class:`repro.core.learner.
LemonTreeLearner`'s C++ role: every scoring inner loop is deliberately
written with plain Python lists and :mod:`math` (no NumPy vectorisation),
while consuming the *same* random streams in the *same* order, so that for
any seed the learned network is identical to the optimized learner's
(verified in ``tests/test_consistency.py``).  Shared pieces are exactly the
ones whose run-time the paper shows to be negligible or that define the
random-stream contract:

* the RNG streams and sampling helpers (:mod:`repro.rng`) — the paper
  likewise forced both implementations onto one PRNG via JNI;
* the consensus-clustering task (< 0.04% of sequential run-time, Section
  3.2.2), so its output is trivially identical;
* decision quantization (:data:`repro.rng.streams.SCORE_QUANTUM`), which
  absorbs summation-order noise between the two scorers.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from repro.consensus import consensus_clusters
from repro.core.config import LearnerConfig
from repro.core.learner import LearnResult
from repro.datatypes import (
    ExpressionMatrix,
    Module,
    ModuleNetwork,
    RegressionTree,
    Split,
    TaskTimes,
    TreeNode,
    compact_labels,
)
from repro.rng.streams import (
    SCORE_QUANTUM,
    GibbsRandom,
    IndexedStream,
    make_stream,
)
from repro.scoring.normal_gamma import NormalGammaPrior, log_marginal_scalar
from repro.scoring.split_score import SplitScorer
from repro.trees.parents import accumulate_parent_scores

_SQRT = math.isqrt


def _q(value: float) -> float:
    return round(value / SCORE_QUANTUM) * SCORE_QUANTUM


# ---------------------------------------------------------------------------
# Pure-Python co-clustering state
# ---------------------------------------------------------------------------


class _RefObsClustering:
    """Scalar-arithmetic twin of :class:`repro.ganesh.state.ObsClustering`."""

    def __init__(self, labels: list[int], prior: NormalGammaPrior) -> None:
        # Compact to 0..K-1 by first appearance (drops empty label bins),
        # mirroring ObsClustering so both learners index clusters alike.
        self.labels = [int(v) for v in compact_labels(labels)]
        self.n_clusters = (max(self.labels) + 1) if self.labels else 0
        self.prior = prior
        self.counts = [0.0] * self.n_clusters
        self.totals = [0.0] * self.n_clusters
        self.sumsqs = [0.0] * self.n_clusters

    @classmethod
    def from_block(
        cls, block: list[list[float]], labels: list[int], prior: NormalGammaPrior
    ) -> "_RefObsClustering":
        oc = cls(labels, prior)
        for row in block:
            for j, value in enumerate(row):
                cid = oc.labels[j]
                oc.counts[cid] += 1.0
                oc.totals[cid] += value
                oc.sumsqs[cid] += value * value
        return oc

    def _lm(self, cid: int) -> float:
        return log_marginal_scalar(
            self.counts[cid], self.totals[cid], self.sumsqs[cid], self.prior
        )

    def score(self) -> float:
        return sum(self._lm(cid) for cid in range(self.n_clusters))

    # -- variable membership -------------------------------------------
    def add_rows(self, rows: list[list[float]]) -> None:
        for row in rows:
            for j, value in enumerate(row):
                cid = self.labels[j]
                self.counts[cid] += 1.0
                self.totals[cid] += value
                self.sumsqs[cid] += value * value

    def remove_rows(self, rows: list[list[float]]) -> None:
        for row in rows:
            for j, value in enumerate(row):
                cid = self.labels[j]
                self.counts[cid] -= 1.0
                self.totals[cid] -= value
                self.sumsqs[cid] -= value * value

    def rows_delta(self, rows: list[list[float]]) -> float:
        add_c = [0.0] * self.n_clusters
        add_t = [0.0] * self.n_clusters
        add_q = [0.0] * self.n_clusters
        for row in rows:
            for j, value in enumerate(row):
                cid = self.labels[j]
                add_c[cid] += 1.0
                add_t[cid] += value
                add_q[cid] += value * value
        delta = 0.0
        for cid in range(self.n_clusters):
            new = log_marginal_scalar(
                self.counts[cid] + add_c[cid],
                self.totals[cid] + add_t[cid],
                self.sumsqs[cid] + add_q[cid],
                self.prior,
            )
            delta += new - self._lm(cid)
        return delta

    # -- observation moves ------------------------------------------------
    def move_obs_scores(self, obs: int, column: list[float]) -> list[float]:
        src = self.labels[obs]
        cc = float(len(column))
        ct = 0.0
        cq = 0.0
        for value in column:
            ct += value
            cq += value * value
        lm_src = self._lm(src)
        rem = (
            log_marginal_scalar(
                self.counts[src] - cc,
                self.totals[src] - ct,
                self.sumsqs[src] - cq,
                self.prior,
            )
            - lm_src
        )
        scores = []
        for cid in range(self.n_clusters):
            if cid == src:
                scores.append(0.0)
            else:
                new = log_marginal_scalar(
                    self.counts[cid] + cc,
                    self.totals[cid] + ct,
                    self.sumsqs[cid] + cq,
                    self.prior,
                )
                scores.append(rem + new - self._lm(cid))
        scores.append(rem + log_marginal_scalar(cc, ct, cq, self.prior))
        return scores

    def move_obs(self, obs: int, target: int, column: list[float]) -> None:
        src = self.labels[obs]
        if target == src:
            return
        cc = float(len(column))
        ct = sum(column)
        cq = sum(v * v for v in column)
        self.counts[src] -= cc
        self.totals[src] -= ct
        self.sumsqs[src] -= cq
        if target == self.n_clusters:
            self.counts.append(cc)
            self.totals.append(ct)
            self.sumsqs.append(cq)
            self.labels[obs] = self.n_clusters
            self.n_clusters += 1
        else:
            self.counts[target] += cc
            self.totals[target] += ct
            self.sumsqs[target] += cq
            self.labels[obs] = target
        if self.counts[src] <= 0:
            self._drop(src)

    def merge_obs_scores(self, cluster: int) -> list[float]:
        lm_c = self._lm(cluster)
        scores = []
        for cid in range(self.n_clusters):
            if cid == cluster:
                scores.append(0.0)
            else:
                merged = log_marginal_scalar(
                    self.counts[cid] + self.counts[cluster],
                    self.totals[cid] + self.totals[cluster],
                    self.sumsqs[cid] + self.sumsqs[cluster],
                    self.prior,
                )
                scores.append(merged - self._lm(cid) - lm_c)
        return scores

    def merge_obs(self, cluster: int, target: int) -> None:
        if target == cluster:
            return
        self.counts[target] += self.counts[cluster]
        self.totals[target] += self.totals[cluster]
        self.sumsqs[target] += self.sumsqs[cluster]
        self.labels = [
            target if lab == cluster else lab for lab in self.labels
        ]
        self._drop(cluster)

    def _drop(self, cluster: int) -> None:
        del self.counts[cluster]
        del self.totals[cluster]
        del self.sumsqs[cluster]
        self.labels = [lab - 1 if lab > cluster else lab for lab in self.labels]
        self.n_clusters -= 1


class _RefCoCluster:
    """Scalar-arithmetic twin of :class:`repro.ganesh.state.CoClusterState`."""

    def __init__(
        self,
        data: list[list[float]],
        var_labels: list[int],
        obs_labels: list[list[int]],
        prior: NormalGammaPrior,
    ) -> None:
        self.data = data
        self.prior = prior
        self.var_labels = list(var_labels)
        n_clusters = (max(self.var_labels) + 1) if self.var_labels else 0
        self.members: list[list[int]] = [[] for _ in range(n_clusters)]
        for var, cid in enumerate(self.var_labels):
            self.members[cid].append(var)
        self.obs: list[_RefObsClustering] = [
            _RefObsClustering.from_block(
                [data[v] for v in self.members[cid]], obs_labels[cid], prior
            )
            for cid in range(n_clusters)
        ]

    @property
    def n_vars(self) -> int:
        return len(self.data)

    @property
    def n_obs(self) -> int:
        return len(self.data[0]) if self.data else 0

    @property
    def n_clusters(self) -> int:
        return len(self.members)

    def move_var_scores(self, var: int) -> list[float]:
        row = self.data[var]
        src = self.var_labels[var]
        src_oc = self.obs[src]
        # removal delta from the source cluster
        rem = 0.0
        add_c = [0.0] * src_oc.n_clusters
        add_t = [0.0] * src_oc.n_clusters
        add_q = [0.0] * src_oc.n_clusters
        for j, value in enumerate(row):
            cid = src_oc.labels[j]
            add_c[cid] += 1.0
            add_t[cid] += value
            add_q[cid] += value * value
        for cid in range(src_oc.n_clusters):
            new = log_marginal_scalar(
                src_oc.counts[cid] - add_c[cid],
                src_oc.totals[cid] - add_t[cid],
                src_oc.sumsqs[cid] - add_q[cid],
                self.prior,
            )
            rem += new - src_oc._lm(cid)

        scores = []
        for cid in range(self.n_clusters):
            if cid == src:
                scores.append(0.0)
            else:
                scores.append(rem + self.obs[cid].rows_delta([row]))
        total = sum(row)
        sumsq = sum(v * v for v in row)
        scores.append(
            rem + log_marginal_scalar(float(len(row)), total, sumsq, self.prior)
        )
        return scores

    def move_var(self, var: int, target: int) -> None:
        src = self.var_labels[var]
        if target == src:
            return
        row = self.data[var]
        self.obs[src].remove_rows([row])
        self.members[src].remove(var)
        if target == self.n_clusters:
            oc = _RefObsClustering.from_block(
                [row], [0] * len(row), self.prior
            )
            self.members.append([var])
            self.obs.append(oc)
            self.var_labels[var] = target
        else:
            self.obs[target].add_rows([row])
            self.members[target].append(var)
            self.var_labels[var] = target
        if not self.members[src]:
            self._drop(src)

    def merge_var_scores(self, cluster: int) -> list[float]:
        block = [self.data[v] for v in self.members[cluster]]
        own = self.obs[cluster].score()
        scores = []
        for cid in range(self.n_clusters):
            if cid == cluster:
                scores.append(0.0)
            else:
                scores.append(self.obs[cid].rows_delta(block) - own)
        return scores

    def merge_var(self, cluster: int, target: int) -> None:
        if target == cluster:
            return
        block = [self.data[v] for v in self.members[cluster]]
        self.obs[target].add_rows(block)
        self.members[target].extend(self.members[cluster])
        for var in self.members[cluster]:
            self.var_labels[var] = target
        self.members[cluster] = []
        self._drop(cluster)

    def _drop(self, cluster: int) -> None:
        del self.members[cluster]
        del self.obs[cluster]
        self.var_labels = [
            lab - 1 if lab > cluster else lab for lab in self.var_labels
        ]


# ---------------------------------------------------------------------------
# The reference learner
# ---------------------------------------------------------------------------


class ReferenceLearner:
    """Same algorithm, same streams, deliberately unvectorised."""

    def __init__(self, config: LearnerConfig | None = None) -> None:
        self.config = config or LearnerConfig()

    def learn(self, matrix: ExpressionMatrix, seed: int) -> LearnResult:
        config = self.config
        data_rows = [list(map(float, row)) for row in matrix.values]

        t0 = time.perf_counter()
        samples = self._task_ganesh(data_rows, seed)
        t1 = time.perf_counter()
        modules_members = consensus_clusters(
            [np.asarray(s) for s in samples],
            threshold=config.consensus_threshold,
            max_clusters=config.max_modules,
        )
        t2 = time.perf_counter()
        modules = self._task_modules(data_rows, modules_members, seed)
        t3 = time.perf_counter()

        network = ModuleNetwork(modules, matrix.var_names, matrix.n_obs)
        times = TaskTimes(ganesh=t1 - t0, consensus=t2 - t1, modules=t3 - t2)
        return LearnResult(network=network, task_times=times)

    # -- task 1 -----------------------------------------------------------
    def _task_ganesh(self, data: list[list[float]], seed: int) -> list[list[int]]:
        config = self.config
        n = len(data)
        m = len(data[0]) if data else 0
        samples = []
        for g in range(config.n_ganesh_runs):
            rng = GibbsRandom(
                make_stream(seed, "ganesh", g, backend=config.rng_backend)
            )
            k0 = config.resolve_init_clusters(n)
            var_labels = [int(v) for v in compact_labels(rng.random_labels(n, k0))]
            n_clusters = max(var_labels) + 1
            sqrt_m = max(1, _SQRT(m))
            obs_labels = [
                [int(v) for v in rng.random_labels(m, sqrt_m)]
                for _ in range(n_clusters)
            ]
            state = _RefCoCluster(data, var_labels, obs_labels, config.prior)
            for _ in range(config.n_update_steps):
                self._reassign_var_sweep(state, rng)
                self._merge_var_sweep(state, rng)
                for cid in range(state.n_clusters):
                    block = [data[v] for v in state.members[cid]]
                    self._reassign_obs_sweep(state.obs[cid], block, rng)
                    self._merge_obs_sweep(state.obs[cid], rng)
            samples.append(list(state.var_labels))
        return samples

    def _reassign_var_sweep(self, state: _RefCoCluster, rng: GibbsRandom) -> None:
        n = state.n_vars
        for _ in range(n):
            var = rng.randint(n)
            scores = state.move_var_scores(var)
            choice = rng.weighted_choice_logs(scores)
            state.move_var(var, choice)

    def _merge_var_sweep(self, state: _RefCoCluster, rng: GibbsRandom) -> None:
        cid = 0
        while cid < state.n_clusters:
            scores = state.merge_var_scores(cid)
            choice = rng.weighted_choice_logs(scores)
            if choice == cid:
                cid += 1
            else:
                state.merge_var(cid, choice)

    def _reassign_obs_sweep(
        self, oc: _RefObsClustering, block: list[list[float]], rng: GibbsRandom
    ) -> None:
        m = len(block[0]) if block else 0
        for _ in range(m):
            obs = rng.randint(m)
            column = [row[obs] for row in block]
            scores = oc.move_obs_scores(obs, column)
            choice = rng.weighted_choice_logs(scores)
            oc.move_obs(obs, choice, column)

    def _merge_obs_sweep(self, oc: _RefObsClustering, rng: GibbsRandom) -> None:
        cid = 0
        while cid < oc.n_clusters:
            scores = oc.merge_obs_scores(cid)
            choice = rng.weighted_choice_logs(scores)
            if choice == cid:
                cid += 1
            else:
                oc.merge_obs(cid, choice)

    # -- task 3 -----------------------------------------------------------
    def _task_modules(
        self, data: list[list[float]], modules_members: list[list[int]], seed: int
    ) -> list[Module]:
        config = self.config
        n_vars = len(data)
        parents = list(config.resolve_candidate_parents(n_vars))
        scorer = SplitScorer(
            beta_grid=config.beta_grid,
            max_steps=config.max_sampling_steps,
            stop_repeats=config.sampling_stop_repeats,
        )
        modules = []
        for module_id, members in enumerate(modules_members):
            modules.append(
                self._learn_one_module(
                    data, module_id, list(members), parents, scorer, seed
                )
            )
        return modules

    def _learn_one_module(
        self,
        data: list[list[float]],
        module_id: int,
        members: list[int],
        parents: list[int],
        scorer: SplitScorer,
        seed: int,
    ) -> Module:
        config = self.config
        block = [data[v] for v in members]
        m = len(block[0])
        mrng = GibbsRandom(
            make_stream(seed, "modules", module_id, backend=config.rng_backend)
        )
        istream = IndexedStream(
            make_stream(seed, "splits", module_id, backend=config.rng_backend),
            scorer.draws_per_item,
        )

        # observation-only GaneSH (mirrors run_obs_only_ganesh)
        sqrt_m = max(1, _SQRT(m))
        labels = [int(v) for v in mrng.random_labels(m, sqrt_m)]
        oc = _RefObsClustering.from_block(block, labels, config.prior)
        samples: list[list[int]] = []
        for step in range(1, config.tree_update_steps + 1):
            self._reassign_obs_sweep(oc, block, mrng)
            self._merge_obs_sweep(oc, mrng)
            if step > config.tree_burn_in or (
                step == config.tree_update_steps and not samples
            ):
                samples.append(list(oc.labels))

        trees = [
            self._build_tree(block, labels, module_id, config.prior)
            for labels in samples
        ]

        module = Module(module_id=module_id, members=list(members), trees=trees)
        split_base = 0
        all_weighted: list[Split] = []
        all_uniform: list[Split] = []
        for tree in trees:
            for node in tree.internal_nodes():
                weighted, uniform, n_splits = self._score_and_select_node(
                    data, node, parents, scorer, istream, split_base, mrng
                )
                split_base += n_splits
                node.weighted_splits = weighted
                node.uniform_splits = uniform
                all_weighted.extend(weighted)
                all_uniform.extend(uniform)
        module.weighted_parents = accumulate_parent_scores(all_weighted)
        module.uniform_parents = accumulate_parent_scores(all_uniform)
        return module

    # -- tree building (mirrors repro.trees.hierarchy) ---------------------
    def _build_tree(
        self,
        block: list[list[float]],
        obs_labels: list[int],
        module_id: int,
        prior: NormalGammaPrior,
    ) -> RegressionTree:
        n_clusters = max(obs_labels) + 1 if obs_labels else 0
        leaves = []
        for cid in range(n_clusters):
            obs = [j for j, lab in enumerate(obs_labels) if lab == cid]
            if not obs:
                continue
            total = 0.0
            count = 0
            for row in block:
                for j in obs:
                    total += row[j]
                    count += 1
            mean = _q(total / count)
            leaves.append((mean, obs[0], obs))
        leaves.sort(key=lambda item: (item[0], item[1]))

        next_id = 0
        subtrees: list[TreeNode] = []
        stats: list[tuple[float, float, float]] = []
        for _, _, obs in leaves:
            subtrees.append(
                TreeNode(node_id=next_id, observations=np.asarray(sorted(obs)))
            )
            cc = 0.0
            ct = 0.0
            cq = 0.0
            for row in block:
                for j in obs:
                    value = row[j]
                    cc += 1.0
                    ct += value
                    cq += value * value
            stats.append((cc, ct, cq))
            next_id += 1

        while len(subtrees) > 1:
            best, best_score = 0, -math.inf
            merged_cache = []
            for i in range(len(subtrees) - 1):
                a, b = stats[i], stats[i + 1]
                merged = (a[0] + b[0], a[1] + b[1], a[2] + b[2])
                merged_cache.append(merged)
                score = _q(
                    log_marginal_scalar(*merged, prior)
                    - log_marginal_scalar(*a, prior)
                    - log_marginal_scalar(*b, prior)
                )
                if score > best_score:
                    best, best_score = i, score
            left, right = subtrees[best], subtrees[best + 1]
            parent = TreeNode(
                node_id=next_id,
                observations=np.asarray(
                    sorted(list(left.observations) + list(right.observations))
                ),
                left=left,
                right=right,
            )
            next_id += 1
            subtrees[best : best + 2] = [parent]
            stats[best : best + 2] = [merged_cache[best]]

        return RegressionTree(module_id=module_id, root=subtrees[0])

    # -- split scoring and selection ----------------------------------------
    def _score_and_select_node(
        self,
        data: list[list[float]],
        node: TreeNode,
        parents: Sequence[int],
        scorer: SplitScorer,
        istream: IndexedStream,
        split_base: int,
        mrng: GibbsRandom,
    ) -> tuple[list[Split], list[Split], int]:
        config = self.config
        obs = [int(o) for o in node.observations]
        assert node.left is not None
        left = set(int(o) for o in node.left.observations)
        signs = [1.0 if o in left else -1.0 for o in obs]
        n_obs = len(obs)

        log_scores: list[float] = []
        accepted: list[bool] = []
        index = split_base
        for parent in parents:
            values = [data[parent][o] for o in obs]
            for j in range(n_obs):
                v = values[j]
                margins = [signs[k] * (v - values[k]) for k in range(n_obs)]
                uniforms = [float(u) for u in istream.item_uniforms(index)]
                result = scorer.score_one(margins, uniforms)
                log_scores.append(result.log_score)
                accepted.append(result.accepted)
                index += 1
        n_splits = len(log_scores)

        # posterior normalization over retained splits (mirrors
        # repro.trees.splits.node_posteriors)
        posteriors = [0.0] * n_splits
        retained = [i for i in range(n_splits) if accepted[i]]
        if retained:
            peak = max(log_scores[i] for i in retained)
            weights = [math.exp(log_scores[i] - peak) for i in retained]
            total = sum(weights)
            for i, w in zip(retained, weights):
                posteriors[i] = w / total

        def make_split(local: int) -> Split:
            parent = parents[local // n_obs]
            value = data[parent][obs[local % n_obs]]
            return Split(
                parent=int(parent),
                value=float(value),
                node_id=node.node_id,
                posterior=float(posteriors[local]),
                n_obs=n_obs,
            )

        weighted: list[Split] = []
        uniform: list[Split] = []
        any_retained = bool(retained)
        for _ in range(config.n_splits_per_node):
            if any_retained:
                log_weights = [
                    math.log(p) if p > 0 else -math.inf for p in posteriors
                ]
                weighted.append(make_split(mrng.weighted_choice_logs(log_weights)))
            uniform.append(make_split(mrng.randint(n_splits)))
        return weighted, uniform, n_splits
