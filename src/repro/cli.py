"""Command-line interface: the Lemon-Tree-style driver.

Subcommands::

    python -m repro generate --n 120 --m 80 --out expr.tsv
    python -m repro learn --input expr.tsv --seed 1 --out-json net.json
    python -m repro learn --preset yeast --scale 0.01 --out-xml net.xml
    python -m repro scale --input expr.tsv --seed 1 --procs 4 64 1024
    python -m repro compare --input expr.tsv --seed 1 --modules 6
    python -m repro serve --dir run/ &
    python -m repro submit --service run/ --input expr.tsv --seed 1 --wait

``learn`` runs the full Lemon-Tree pipeline (optionally with acyclicity
post-processing), ``scale`` records a work trace and prints the projected
strong-scaling table, ``compare`` pits the Lemon-Tree pipeline against the
GENOMICA-style two-step learner, and ``generate`` writes synthetic
module-structured expression data.

Every learning subcommand takes the same parallel knobs: ``--workers W``
(0 = all cores the affinity mask allows) runs the persistent shared-memory
task-pool executor, ``--topology {auto,flat}`` selects the machine
model — ``auto`` probes NUMA domains and cache sizes from sysfs and pins
workers accordingly, ``flat`` forces the single-domain fallback — and
``--no-steal`` disables the domain-affine work queues (idle workers
stealing from the most-loaded foreign NUMA domain) that multi-domain
dynamic dispatch uses by default.  All of these are pure placement: the
learned network is bit-identical whatever the setting.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.core.output import network_to_json, network_to_xml
from repro.data.io import read_expression_tsv, write_expression_tsv
from repro.data.synthetic import make_module_dataset, thaliana_like, yeast_like
from repro.datatypes import ExpressionMatrix
from repro.scoring.kernel import KERNEL_BACKENDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Parallel construction of module networks"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic expression matrix")
    gen.add_argument("--n", type=int, default=100, help="number of genes")
    gen.add_argument("--m", type=int, default=60, help="number of observations")
    gen.add_argument("--modules", type=int, default=None, help="ground-truth modules")
    gen.add_argument("--noise", type=float, default=0.4)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output TSV path")

    learn = sub.add_parser("learn", help="learn a module network")
    _add_data_args(learn)
    learn.add_argument("--seed", type=int, default=0)
    learn.add_argument("--ganesh-runs", type=int, default=1, help="GaneSH runs (G)")
    learn.add_argument("--update-steps", type=int, default=1, help="update steps (U)")
    learn.add_argument("--init-clusters", type=float, default=None,
                       help="initial variable clusters (int, or fraction of n)")
    learn.add_argument("--splits", type=int, default=2, help="splits per node (J)")
    learn.add_argument("--sampling-steps", type=int, default=10,
                       help="max discrete sampling steps per split (S)")
    _add_executor_args(learn)
    learn.add_argument("--checkpoint-dir", default=None,
                       help="resume/continue directory: task 1 writes "
                            "ganesh_<g>.npz, task 3 module_<id>.json")
    learn.add_argument("--acyclic", action="store_true",
                       help="post-process the network into a DAG")
    learn.add_argument("--out-json", default=None)
    learn.add_argument("--out-xml", default=None)

    scale = sub.add_parser("scale", help="strong-scaling projection study")
    _add_data_args(scale)
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument("--sampling-steps", type=int, default=10)
    scale.add_argument("--procs", type=int, nargs="+",
                       default=[1, 4, 16, 64, 256, 1024, 4096])
    scale.add_argument("--tau", type=float, default=None, help="latency (s)")
    scale.add_argument("--mu", type=float, default=None, help="per-word time (s)")

    compare = sub.add_parser(
        "compare", help="Lemon-Tree pipeline vs GENOMICA-style learner"
    )
    _add_data_args(compare)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--modules", type=int, default=8,
                         help="module count for the GENOMICA learner")
    compare.add_argument("--workers", type=int, default=1, metavar="W",
                        help="worker processes for both learners (0 = all "
                             "cores; >1 runs the persistent pool executor)")
    _add_topology_arg(compare)

    # Task-by-task workflow (how Lemon-Tree itself is driven: separate
    # invocations exchanging intermediate files, so the G GaneSH runs can
    # be separate cluster jobs).
    ganesh = sub.add_parser("ganesh", help="task 1: sample variable clusterings")
    _add_data_args(ganesh)
    ganesh.add_argument("--seed", type=int, default=0)
    ganesh.add_argument("--runs", type=int, default=1, help="GaneSH runs (G)")
    ganesh.add_argument("--update-steps", type=int, default=1)
    ganesh.add_argument("--init-clusters", type=float, default=None)
    ganesh.add_argument("--workers", type=int, default=1, metavar="W",
                        help="worker processes for the G runs (0 = all cores; "
                             ">1 runs the persistent pool executor)")
    _add_topology_arg(ganesh)
    _add_node_args(ganesh)
    ganesh.add_argument("--checkpoint-dir", default=None,
                        help="resume/continue directory for per-run "
                             "ganesh_<g>.npz checkpoints")
    ganesh.add_argument("--out", required=True, help="clusterings JSON")

    consensus = sub.add_parser("consensus", help="task 2: consensus modules")
    consensus.add_argument("--inputs", nargs="+", required=True,
                           help="clustering JSON files from the ganesh task")
    consensus.add_argument("--threshold", type=float, default=0.25)
    consensus.add_argument("--max-modules", type=int, default=None)
    consensus.add_argument("--out", required=True, help="modules JSON")

    modules = sub.add_parser("modules", help="task 3: trees, splits, parents")
    _add_data_args(modules)
    modules.add_argument("--seed", type=int, default=0)
    modules.add_argument("--modules-file", required=True,
                         help="modules JSON from the consensus task")
    modules.add_argument("--splits", type=int, default=2)
    modules.add_argument("--sampling-steps", type=int, default=10)
    modules.add_argument("--checkpoint-dir", default=None,
                         help="resume/continue directory for per-module checkpoints")
    _add_executor_args(modules)
    modules.add_argument("--out-json", default=None)
    modules.add_argument("--out-xml", default=None)

    report = sub.add_parser("report", help="summarize a learned network")
    report.add_argument("--network", required=True, help="network JSON file")
    report.add_argument("--top", type=int, default=3, help="regulators per module")

    validate = sub.add_parser(
        "validate",
        help="scenario-matrix differential validation across backends",
        description="Run adversarial data scenarios (ties, missing data, "
                    "degenerate modules, extreme scales, ...) through every "
                    "backend combination — worker counts x scoring-kernel "
                    "backends x RNG backends — asserting bit-identity of the "
                    "learned network against the sequential reference and "
                    "reporting ground-truth recovery metrics per scenario.",
    )
    validate.add_argument("--smoke", action="store_true",
                          help="the reduced CI grid: fewer scenarios at "
                               "smaller shapes and fewer worker counts "
                               "(bit-identity asserts are unchanged)")
    validate.add_argument("--scenarios", nargs="+", default=None,
                          metavar="NAME",
                          help="run only these scenarios (default: the full "
                               "registry, or the smoke subset with --smoke)")
    validate.add_argument("--list", action="store_true", dest="list_scenarios",
                          help="list registered scenarios and exit")
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--workers", type=int, nargs="+", default=None,
                          metavar="W",
                          help="worker counts to differentiate (default: "
                               "1 2 with --smoke, else 1 2 4)")
    validate.add_argument("--nodes", type=int, nargs="+", default=None,
                          metavar="N",
                          help="shard node counts to differentiate (e.g. "
                               "'--nodes 1 2' also runs every scenario on "
                               "the multi-node tier, asserting the same "
                               "bit-identity against the sequential "
                               "reference)")
    validate.add_argument("--node-backend", choices=["socket", "thread"],
                          default="socket",
                          help="shard transport for the --nodes combos")
    validate.add_argument("--out", default=None,
                          help="write the JSON scenario report here")

    # Always-on inference service (daemon + client verbs).  The daemon
    # owns one warm executor lease and the process-shared score cache
    # across jobs; clients talk to it over a localhost socket discovered
    # through <dir>/endpoint.json.
    serve = sub.add_parser(
        "serve",
        help="run the always-on inference daemon",
        description="Start a persistent job daemon in DIR: one warm "
                    "executor lease and a process-shared score cache "
                    "answer repeat queries from checkpoint namespaces "
                    "and memoized split scores.  Clients find it through "
                    "DIR/endpoint.json; every served network is "
                    "bit-identical to a fresh one-shot learn.",
    )
    serve.add_argument("--dir", required=True, metavar="DIR",
                       help="run directory: endpoint.json and per-job "
                            "checkpoint namespaces live here")
    serve.add_argument("--port", type=int, default=0,
                       help="localhost port (0 = let the OS pick)")
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="admission bound on queued + running jobs")
    serve.add_argument("--score-cache-mb", type=int, default=256, metavar="MB",
                       help="shared split-score cache budget in MiB "
                            "(0 disables the cross-job cache)")

    submit = sub.add_parser("submit", help="submit a job to a running daemon")
    submit.add_argument("--service", required=True, metavar="DIR",
                        help="the daemon's run directory (--dir of serve)")
    _add_data_args(submit)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--ganesh-runs", type=int, default=1)
    submit.add_argument("--update-steps", type=int, default=1)
    submit.add_argument("--init-clusters", type=float, default=None)
    submit.add_argument("--splits", type=int, default=2)
    submit.add_argument("--sampling-steps", type=int, default=10)
    _add_executor_args(submit)
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first; FIFO within a level")
    submit.add_argument("--no-checkpoints", action="store_true",
                        help="skip the job's checkpoint namespace "
                             "(results are identical either way)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print its "
                             "result summary")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds")
    submit.add_argument("--out-json", default=None,
                        help="with --wait: write the learned network here")

    status = sub.add_parser("status", help="show daemon job states")
    status.add_argument("--service", required=True, metavar="DIR")
    status.add_argument("--job", default=None, help="one job id (default: all)")
    status.add_argument("--stats", action="store_true",
                        help="also print service counters and cache stats")

    result = sub.add_parser("result", help="fetch a finished job's network")
    result.add_argument("--service", required=True, metavar="DIR")
    result.add_argument("--job", required=True, help="job id from submit")
    result.add_argument("--out-json", default=None,
                        help="write the learned network JSON here")

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("--service", required=True, metavar="DIR")
    cancel.add_argument("--job", required=True, help="job id from submit")

    shutdown = sub.add_parser("shutdown", help="stop a running daemon")
    shutdown.add_argument("--service", required=True, metavar="DIR")
    return parser


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1, metavar="W",
                        help="worker processes for the parallel tasks (0 = all "
                             "cores; >1 runs the persistent shared-memory "
                             "task-pool executor)")
    parser.add_argument("--parallel-mode", choices=["auto", "module", "split"],
                        default="auto",
                        help="executor decomposition: whole modules per worker, "
                             "fine-grained split tasks, or cost-based auto")
    parser.add_argument("--schedule", choices=["static", "dynamic"],
                        default="dynamic",
                        help="executor dispatch: static blocks or dynamic "
                             "largest-first pulling")
    parser.add_argument("--score-cache-mb", type=int, default=0, metavar="MB",
                        help="byte budget (in MiB) of the process-shared "
                             "split-score cache; 0 (default) keeps the "
                             "per-kernel memo only — purely a speed knob, "
                             "results are bit-identical")
    _add_topology_arg(parser)
    _add_node_args(parser)


def _add_topology_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", choices=["auto", "flat"], default="auto",
                        help="machine model: probe NUMA domains and cache "
                             "sizes from sysfs and pin workers (auto), or "
                             "force the flat single-domain fallback (flat); "
                             "placement only — results are bit-identical")
    parser.add_argument("--no-steal", action="store_true",
                        help="disable domain-affine work queues with "
                             "cross-domain stealing on multi-domain dynamic "
                             "dispatch (placement only — results are "
                             "bit-identical)")
    parser.add_argument("--kernel-backend", choices=list(KERNEL_BACKENDS),
                        default="auto",
                        help="split-scoring backend: the NumPy oracle "
                             "(numpy), the certified native extension "
                             "(native; errors when unavailable), or probe "
                             "and fall back (auto) — backends are "
                             "bit-identical, this is purely a speed knob")


def _add_node_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=1, metavar="N",
                        help="shard nodes (>1 runs the multi-node tier: the "
                             "work is LPT-partitioned across N nodes, each "
                             "running its own W-worker pool; results are "
                             "bit-identical for any node count)")
    parser.add_argument("--node-backend", choices=["socket", "thread"],
                        default="socket",
                        help="shard transport: real OS processes over a "
                             "length-prefixed localhost socket protocol "
                             "(socket), or in-process threads over the same "
                             "frame protocol (thread)")


def _parallel_config(args: argparse.Namespace) -> ParallelConfig:
    """The unified executor knobs shared by every learning subcommand."""
    return ParallelConfig(
        n_workers=getattr(args, "workers", 1),
        mode=getattr(args, "parallel_mode", "auto"),
        schedule=getattr(args, "schedule", "dynamic"),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        topology=getattr(args, "topology", "auto"),
        steal=not getattr(args, "no_steal", False),
        kernel_backend=getattr(args, "kernel_backend", "auto"),
        n_nodes=getattr(args, "nodes", 1),
        node_backend=getattr(args, "node_backend", "socket"),
        score_cache_bytes=int(getattr(args, "score_cache_mb", 0)) * (1 << 20),
    )


def _add_data_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="expression matrix TSV")
    source.add_argument("--preset", choices=["yeast", "thaliana"],
                        help="synthetic preset data set")
    parser.add_argument("--scale", type=float, default=1 / 64,
                        help="preset scale factor (with --preset)")


def _load_matrix(args: argparse.Namespace) -> ExpressionMatrix:
    if args.input:
        return read_expression_tsv(args.input)
    preset = yeast_like if args.preset == "yeast" else thaliana_like
    return preset(scale=args.scale).matrix


def _learner_config(args: argparse.Namespace) -> LearnerConfig:
    init = args.init_clusters if hasattr(args, "init_clusters") else None
    if init is not None and init >= 1:
        init = int(init)
    return LearnerConfig(
        n_ganesh_runs=getattr(args, "ganesh_runs", 1),
        n_update_steps=getattr(args, "update_steps", 1),
        init_var_clusters=init,
        n_splits_per_node=getattr(args, "splits", 2),
        max_sampling_steps=getattr(args, "sampling_steps", 10),
        parallel=_parallel_config(args),
    )


def cmd_generate(args: argparse.Namespace) -> int:
    dataset = make_module_dataset(
        args.n, args.m, n_modules=args.modules, noise=args.noise, seed=args.seed
    )
    write_expression_tsv(dataset.matrix, args.out)
    print(f"wrote {args.out}: {dataset.matrix.n_vars} x {dataset.matrix.n_obs} "
          f"({dataset.truth.n_modules} ground-truth modules)")
    return 0


def cmd_learn(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args)
    config = _learner_config(args)
    t0 = time.perf_counter()
    network = LemonTreeLearner(config).learn(matrix, seed=args.seed).network
    workers = config.resolve_n_workers()
    n_nodes = config.parallel.n_nodes
    if n_nodes > 1:
        mode = f"sharded n={n_nodes} x w={workers} ({config.parallel.node_backend})"
    elif workers > 1:
        mode = f"executor w={workers}"
    else:
        mode = "sequential"
    elapsed = time.perf_counter() - t0

    removed = []
    if args.acyclic:
        from repro.analysis.acyclicity import make_acyclic

        network, removed = make_acyclic(network)

    print(f"learned {network.n_modules} modules from {matrix.n_vars} x "
          f"{matrix.n_obs} in {elapsed:.1f} s ({mode})")
    if removed:
        print(f"acyclicity post-processing removed {len(removed)} module edge(s)")
    for module in network.modules:
        top = sorted(module.weighted_parents.items(), key=lambda kv: -kv[1])[:3]
        regs = ", ".join(f"{matrix.var_names[p]}({s:.2f})" for p, s in top)
        print(f"  M{module.module_id}: {module.size} genes; regulators: {regs or '-'}")

    if args.out_json:
        Path(args.out_json).write_text(network_to_json(network), encoding="utf-8")
        print(f"wrote {args.out_json}")
    if args.out_xml:
        Path(args.out_xml).write_text(network_to_xml(network), encoding="utf-8")
        print(f"wrote {args.out_xml}")
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    from repro.parallel.costmodel import PHOENIX_LIKE, MachineModel
    from repro.parallel.trace import WorkTrace, project_time

    matrix = _load_matrix(args)
    config = LearnerConfig(max_sampling_steps=args.sampling_steps)
    trace = WorkTrace()
    result = LemonTreeLearner(config).learn(matrix, seed=args.seed, trace=trace)
    t1 = result.task_times.total
    model = PHOENIX_LIKE
    if args.tau is not None or args.mu is not None:
        model = MachineModel(
            tau=args.tau if args.tau is not None else PHOENIX_LIKE.tau,
            mu=args.mu if args.mu is not None else PHOENIX_LIKE.mu,
        )
    print(f"T_1 = {t1:.2f} s on {matrix.n_vars} x {matrix.n_obs}")
    print(f"{'p':>6} {'T_p (s)':>10} {'speedup':>9} {'efficiency':>11} {'imbalance':>10}")
    for p in args.procs:
        tp = project_time(trace, p, model=model).total
        print(f"{p:>6} {tp:>10.3f} {t1 / tp:>9.1f} {t1 / tp / p:>11.0%} "
              f"{trace.split_imbalance(p):>10.2f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.genomica import GenomicaConfig, GenomicaLearner

    matrix = _load_matrix(args)
    parallel = _parallel_config(args)
    t0 = time.perf_counter()
    lemon = LemonTreeLearner(
        LearnerConfig(parallel=parallel)
    ).learn(matrix, seed=args.seed)
    t_lemon = time.perf_counter() - t0
    t0 = time.perf_counter()
    genomica = GenomicaLearner(
        GenomicaConfig(n_modules=args.modules, parallel=parallel)
    ).learn(matrix, seed=args.seed)
    t_genomica = time.perf_counter() - t0

    print(f"{'approach':<22} {'modules':>8} {'time (s)':>9}")
    print(f"{'Lemon-Tree pipeline':<22} {lemon.network.n_modules:>8} {t_lemon:>9.1f}")
    print(f"{'GENOMICA two-step':<22} {genomica.network.n_modules:>8} {t_genomica:>9.1f}")
    from repro.analysis.recovery import adjusted_rand_index

    agreement = adjusted_rand_index(
        lemon.network.assignment_labels(), genomica.network.assignment_labels()
    )
    print(f"module-assignment agreement (ARI): {agreement:.2f}")
    return 0


def cmd_ganesh(args: argparse.Namespace) -> int:
    import json

    matrix = _load_matrix(args)
    init = args.init_clusters
    if init is not None and init >= 1:
        init = int(init)
    config = LearnerConfig(
        n_ganesh_runs=args.runs,
        n_update_steps=args.update_steps,
        init_var_clusters=init,
        parallel=_parallel_config(args),
    )
    samples = LemonTreeLearner(config).sample_clusterings(matrix, seed=args.seed)
    payload = {
        "n_vars": matrix.n_vars,
        "seed": args.seed,
        "samples": [[int(v) for v in s] for s in samples],
    }
    Path(args.out).write_text(json.dumps(payload), encoding="utf-8")
    print(f"wrote {args.out}: {len(samples)} clustering sample(s) for "
          f"{matrix.n_vars} variables")
    return 0


def cmd_consensus(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    samples = []
    n_vars = None
    for path in args.inputs:
        payload = json.loads(Path(path).read_text())
        if n_vars is None:
            n_vars = payload["n_vars"]
        elif n_vars != payload["n_vars"]:
            raise SystemExit(f"{path}: variable count mismatch")
        samples.extend(np.asarray(s) for s in payload["samples"])
    config = LearnerConfig(
        consensus_threshold=args.threshold, max_modules=args.max_modules
    )
    modules = LemonTreeLearner(config).consensus(samples)
    Path(args.out).write_text(
        json.dumps({"n_vars": n_vars, "modules": modules}), encoding="utf-8"
    )
    print(f"wrote {args.out}: {len(modules)} consensus modules from "
          f"{len(samples)} sample(s)")
    return 0


def cmd_modules(args: argparse.Namespace) -> int:
    import json

    matrix = _load_matrix(args)
    payload = json.loads(Path(args.modules_file).read_text())
    if payload["n_vars"] != matrix.n_vars:
        raise SystemExit(
            f"{args.modules_file}: modules were built for {payload['n_vars']} "
            f"variables, matrix has {matrix.n_vars}"
        )
    config = LearnerConfig(
        n_splits_per_node=args.splits, max_sampling_steps=args.sampling_steps,
        parallel=_parallel_config(args),
    )
    result = LemonTreeLearner(config).learn_from_modules(
        matrix, payload["modules"], seed=args.seed,
    )
    network = result.network
    workers = config.resolve_n_workers()
    mode = f"executor w={workers}" if workers > 1 else "sequential"
    print(f"learned trees and parents for {network.n_modules} modules "
          f"in {result.task_times.modules:.1f} s ({mode})")
    if args.out_json:
        Path(args.out_json).write_text(network_to_json(network), encoding="utf-8")
        print(f"wrote {args.out_json}")
    if args.out_xml:
        Path(args.out_xml).write_text(network_to_xml(network), encoding="utf-8")
        print(f"wrote {args.out_xml}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import network_report, parent_score_summary
    from repro.core.output import network_from_json

    network = network_from_json(Path(args.network).read_text())
    print(network_report(network, top_regulators=args.top))
    summary = parent_score_summary(network)
    if summary.get("n_weighted_parents"):
        print()
        print("parent-score summary: "
              + ", ".join(f"{k}={v:.3g}" for k, v in summary.items()))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import SCENARIOS, run_matrix

    if args.list_scenarios:
        width = max(len(name) for name in SCENARIOS)
        for name, spec in SCENARIOS.items():
            print(f"{name:<{width}}  {spec.description}")
        return 0

    worker_counts = tuple(args.workers) if args.workers else None
    node_counts = tuple(args.nodes) if args.nodes else None
    t0 = time.perf_counter()
    report = run_matrix(
        scenario_names=args.scenarios,
        seed=args.seed,
        smoke=args.smoke,
        worker_counts=worker_counts,
        node_counts=node_counts,
        node_backend=args.node_backend,
    )
    elapsed = time.perf_counter() - t0
    print(report.summarize())
    print(f"validated in {elapsed:.1f} s")
    if args.out:
        Path(args.out).write_text(report.to_json(), encoding="utf-8")
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


def _service_client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient.from_dir(args.service)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceDaemon

    daemon = ServiceDaemon(
        args.dir,
        port=args.port,
        max_inflight=args.max_inflight,
        score_cache_bytes=args.score_cache_mb * (1 << 20),
    )
    with daemon:
        print(f"serving on {daemon.host}:{daemon.port} "
              f"(endpoint {daemon.endpoint_path})", flush=True)
        try:
            daemon.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
    print("daemon stopped")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args)
    config = _learner_config(args)
    client = _service_client(args)
    job_id = client.submit(
        matrix, config, args.seed,
        priority=args.priority,
        use_checkpoints=not args.no_checkpoints,
    )
    print(f"submitted {job_id}")
    if not args.wait:
        return 0
    payload = client.wait(job_id, timeout=args.timeout)
    print(f"{job_id} done: {payload['n_modules']} modules in "
          f"{payload['seconds']:.2f} s (fingerprint {payload['fingerprint'][:16]})")
    if args.out_json:
        Path(args.out_json).write_text(payload["network_json"], encoding="utf-8")
        print(f"wrote {args.out_json}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    client = _service_client(args)
    rows = client.status(args.job)
    if isinstance(rows, dict):
        rows = [rows]
    if not rows:
        print("no jobs")
    else:
        print(f"{'job':<12} {'state':<10} {'prio':>4} {'seed':>6}  fingerprint")
        for row in rows:
            print(f"{row['job_id']:<12} {row['state']:<10} "
                  f"{row['priority']:>4} {row['seed']:>6}  "
                  f"{row['fingerprint'][:16]}")
            if row.get("error"):
                print(f"{'':<12} error: {row['error']['type']}: "
                      f"{row['error']['message']}")
    if args.stats:
        import json as _json

        print(_json.dumps(client.stats(), indent=2, default=str))
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    client = _service_client(args)
    payload = client.result(args.job)
    print(f"{args.job}: {payload['n_modules']} modules in "
          f"{payload['seconds']:.2f} s (fingerprint {payload['fingerprint'][:16]})")
    if args.out_json:
        Path(args.out_json).write_text(payload["network_json"], encoding="utf-8")
        print(f"wrote {args.out_json}")
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    cancelled = _service_client(args).cancel(args.job)
    print(f"{args.job}: {'cancelled' if cancelled else 'not cancellable'}")
    return 0 if cancelled else 1


def cmd_shutdown(args: argparse.Namespace) -> int:
    _service_client(args).shutdown()
    print("shutdown requested")
    return 0


COMMANDS = {
    "generate": cmd_generate,
    "learn": cmd_learn,
    "scale": cmd_scale,
    "compare": cmd_compare,
    "ganesh": cmd_ganesh,
    "consensus": cmd_consensus,
    "modules": cmd_modules,
    "report": cmd_report,
    "validate": cmd_validate,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "result": cmd_result,
    "cancel": cmd_cancel,
    "shutdown": cmd_shutdown,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
