"""Human-readable summaries of learned module networks."""

from __future__ import annotations

import numpy as np

from repro.datatypes import ModuleNetwork


def network_report(network: ModuleNetwork, top_regulators: int = 3) -> str:
    """A text report: global stats, per-module membership, top regulators,
    tree shapes, and module-graph structure (including feedback edges, since
    learned networks are not DAGs by default)."""
    lines: list[str] = []
    sizes = [module.size for module in network.modules]
    lines.append(
        f"module network: {network.n_vars} variables, {network.n_obs} "
        f"observations, {network.n_modules} modules"
    )
    if sizes:
        lines.append(
            f"module sizes: min {min(sizes)}, median "
            f"{int(np.median(sizes))}, max {max(sizes)}"
        )

    graph = network.module_graph()
    feedback = network.feedback_edges()
    lines.append(
        f"module graph: {graph.number_of_edges()} edges, "
        f"{len(feedback)} feedback edge(s)"
        + (" (acyclic)" if not feedback else "")
    )
    lines.append("")

    for module in network.modules:
        names = [network.var_names[v] for v in module.members[:6]]
        member_str = ", ".join(names) + (" ..." if module.size > 6 else "")
        lines.append(f"M{module.module_id} ({module.size} variables): {member_str}")
        ranked = sorted(module.weighted_parents.items(), key=lambda kv: (-kv[1], kv[0]))
        if ranked:
            regs = ", ".join(
                f"{network.var_names[p]} ({score:.3f})"
                for p, score in ranked[:top_regulators]
            )
            lines.append(f"  regulators: {regs}")
        else:
            lines.append("  regulators: (none retained)")
        for tree in module.trees:
            internal = len(tree.internal_nodes())
            lines.append(
                f"  tree: {tree.n_leaves()} leaves, {internal} internal "
                f"nodes, depth {tree.root.depth()}"
            )
    return "\n".join(lines)


def parent_score_summary(network: ModuleNetwork) -> dict[str, float]:
    """Aggregate statistics of the weighted vs uniform parent scores —
    the significance comparison the paper's downstream analyses use."""
    weighted = np.array(
        [s for m in network.modules for s in m.weighted_parents.values()]
    )
    uniform = np.array(
        [s for m in network.modules for s in m.uniform_parents.values()]
    )
    out = {
        "n_weighted_parents": float(weighted.size),
        "n_uniform_parents": float(uniform.size),
    }
    if weighted.size:
        out["weighted_mean"] = float(weighted.mean())
        out["weighted_max"] = float(weighted.max())
    if uniform.size:
        out["uniform_mean"] = float(uniform.mean())
    if weighted.size and uniform.size and uniform.mean() > 0:
        out["separation"] = float(weighted.mean() / uniform.mean())
    return out
