"""Acyclicity post-processing for learned module networks.

The Lemon-Tree algorithm does not enforce the DAG constraint, so a learned
network "may need to be post-processed using an existing method to get the
DAG" (Section 2.2 of the paper; declared out of scope there).  This module
provides that post-processing step: a greedy minimum-feedback-arc-set pass
over the *module graph* that removes the cheapest parent relations until
the graph is acyclic.

The cost of removing an edge ``M_j -> M_k`` is the total weighted-parent
score mass of the parents in ``M_j`` driving ``M_k`` — so weakly-supported
feedback is cut first, preserving the strongest regulatory structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.datatypes import Module, ModuleNetwork


@dataclass(frozen=True)
class RemovedEdge:
    """One module-graph edge cut by the post-processing."""

    source_module: int
    target_module: int
    #: parents (variable indices) removed from the target module
    parents: tuple[int, ...]
    #: total parent-score mass removed
    score_mass: float


def _edge_support(network: ModuleNetwork) -> dict[tuple[int, int], dict[int, float]]:
    """Parent scores grouped by the module edge they induce."""
    support: dict[tuple[int, int], dict[int, float]] = {}
    for module in network.modules:
        for parent, score in module.weighted_parents.items():
            src = network.assignment(parent)
            if src is None:
                continue
            support.setdefault((src, module.module_id), {})[parent] = score
    return support


def make_acyclic(network: ModuleNetwork) -> tuple[ModuleNetwork, list[RemovedEdge]]:
    """Return an acyclic copy of ``network`` plus the removed edges.

    Greedy minimum feedback arc set: while a cycle exists, remove the cycle
    edge with the smallest supporting parent-score mass (self-loops — a
    module regulating itself — are always cut first; they are feedback by
    definition).  The corresponding parents are dropped from the target
    module's parent map.
    """
    support = _edge_support(network)
    graph = nx.DiGraph()
    for module in network.modules:
        graph.add_node(module.module_id)
    for (src, dst), parents in support.items():
        graph.add_edge(src, dst, mass=sum(parents.values()))

    removed: list[RemovedEdge] = []

    # Self-loops first.
    for src, dst in list(nx.selfloop_edges(graph)):
        removed.append(_cut(graph, support, src, dst))

    while True:
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            break
        weakest = min(cycle, key=lambda e: graph.edges[e[0], e[1]]["mass"])
        removed.append(_cut(graph, support, weakest[0], weakest[1]))

    # Build the cleaned network.
    cut_parents: dict[int, set[int]] = {}
    for edge in removed:
        cut_parents.setdefault(edge.target_module, set()).update(edge.parents)
    modules = []
    for module in network.modules:
        dropped = cut_parents.get(module.module_id, set())
        modules.append(
            Module(
                module_id=module.module_id,
                members=list(module.members),
                trees=module.trees,
                weighted_parents={
                    p: s for p, s in module.weighted_parents.items() if p not in dropped
                },
                uniform_parents=dict(module.uniform_parents),
            )
        )
    cleaned = ModuleNetwork(modules, network.var_names, network.n_obs)
    return cleaned, removed


def _cut(graph: nx.DiGraph, support, src: int, dst: int) -> RemovedEdge:
    parents = support.get((src, dst), {})
    graph.remove_edge(src, dst)
    return RemovedEdge(
        source_module=src,
        target_module=dst,
        parents=tuple(sorted(parents)),
        score_mass=sum(parents.values()),
    )
