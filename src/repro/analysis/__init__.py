"""Analysis helpers for learned module networks.

Quality metrics used by the examples and tests to verify that the learner
recovers generative structure from the synthetic data substrate — the role
the biological validation studies play for Lemon-Tree in the literature
(Section 1.1 of the paper).
"""

from repro.analysis.acyclicity import RemovedEdge, make_acyclic
from repro.analysis.report import network_report, parent_score_summary
from repro.analysis.recovery import (
    adjusted_rand_index,
    module_recovery_score,
    parent_recovery,
)

__all__ = [
    "adjusted_rand_index",
    "module_recovery_score",
    "parent_recovery",
    "make_acyclic",
    "RemovedEdge",
    "network_report",
    "parent_score_summary",
]
