"""Recovery metrics: how well a learned network matches generative truth."""

from __future__ import annotations

from math import comb

import numpy as np

from repro.data.synthetic import GroundTruth
from repro.datatypes import ModuleNetwork


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index between two partitions (1 = identical,
    ~0 = random agreement)."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValueError("label arrays must align")
    n = a.size
    if n < 2:
        return 1.0
    _, a_inv = np.unique(a, return_inverse=True)
    _, b_inv = np.unique(b, return_inverse=True)
    table = np.zeros((a_inv.max() + 1, b_inv.max() + 1), dtype=np.int64)
    np.add.at(table, (a_inv, b_inv), 1)

    sum_cells = sum(comb(int(x), 2) for x in table.ravel())
    sum_rows = sum(comb(int(x), 2) for x in table.sum(axis=1))
    sum_cols = sum(comb(int(x), 2) for x in table.sum(axis=0))
    total = comb(n, 2)
    expected = sum_rows * sum_cols / total
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_cells - expected) / (max_index - expected))


def module_recovery_score(network: ModuleNetwork, truth: GroundTruth) -> float:
    """ARI between learned module assignment and the generative modules."""
    return adjusted_rand_index(network.assignment_labels(), truth.module_of_gene)


def parent_recovery(
    network: ModuleNetwork, truth: GroundTruth, top_k: int = 3
) -> dict[str, float]:
    """Regulator-recovery precision/recall.

    For each learned module, its top-``top_k`` weighted parents are compared
    against the generative regulators of the ground-truth module its members
    predominantly come from.  Returns micro-averaged precision and recall.
    """
    tp = 0
    n_predicted = 0
    n_true = 0
    truth_labels = truth.module_of_gene
    for module in network.modules:
        if not module.members:
            continue
        member_truth = truth_labels[np.asarray(module.members)]
        dominant = int(np.bincount(member_truth).argmax())
        true_regs = set(truth.regulators_of(dominant))
        ranked = sorted(
            module.weighted_parents.items(), key=lambda kv: (-kv[1], kv[0])
        )
        predicted = {parent for parent, _score in ranked[:top_k]}
        tp += len(predicted & true_regs)
        n_predicted += len(predicted)
        n_true += len(true_regs)
    precision = tp / n_predicted if n_predicted else 0.0
    recall = tp / n_true if n_true else 0.0
    return {"precision": precision, "recall": recall, "true_positives": float(tp)}
