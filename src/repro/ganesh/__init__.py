"""GaneSH Gibbs-sampler co-clustering (Section 2.2.1).

GaneSH (Joshi et al. 2008) performs two-way clustering of variables and
observations.  :mod:`repro.ganesh.state` maintains the co-clustering with
incremental sufficient statistics so each Gibbs move is scored in O(m + L)
instead of O(n m); :mod:`repro.ganesh.coclustering` drives the sweeps of
Algorithm 3 (random initialization, variable reassign/merge, per-cluster
observation reassign/merge).
"""

from repro.ganesh.coclustering import GaneshResult, run_ganesh, run_obs_only_ganesh
from repro.ganesh.state import CoClusterState, ObsClustering

__all__ = [
    "CoClusterState",
    "ObsClustering",
    "GaneshResult",
    "run_ganesh",
    "run_obs_only_ganesh",
]
