"""Incremental co-clustering state for the GaneSH Gibbs sampler.

The GaneSH score is decomposable: the co-clustering score is the sum of
normal-gamma log marginal likelihoods of the (variable-cluster x
observation-cluster) blocks.  This module maintains per-block sufficient
statistics incrementally so that the score change of any Gibbs move
(reassign / merge, for variables or observations) is computed from the
blocks it touches only:

* moving a variable touches the source and target clusters' blocks and
  costs O(m + L) after a grouped ``bincount`` of the variable's row;
* moving an observation touches two blocks of one cluster and costs
  O(|members| + L);
* merging observation clusters is O(1) per candidate pair because block
  statistics are additive.

All candidate scores are returned as vectors so the Gibbs move is one
``weighted_choice_logs`` call — exactly the shape the parallel algorithm
partitions across ranks (Algorithms 1 and 2 in the paper).
"""

from __future__ import annotations

import math

import numpy as np

from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior, log_marginal
from repro.scoring.suffstats import StatsArrays, SuffStats


class ObsClustering:
    """An observation clustering of one variable cluster's data block.

    ``labels[j]`` is the observation cluster of observation ``j``; block
    statistics pool *all* member variables' values at the block's
    observations (the GaneSH model shares one Gaussian per block).
    """

    def __init__(self, labels: np.ndarray, prior: NormalGammaPrior = DEFAULT_PRIOR) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError("labels must be 1-D")
        self.labels = _compact(labels)
        self.n_clusters = int(self.labels.max()) + 1 if labels.size else 0
        self.prior = prior
        self.stats = StatsArrays(self.n_clusters)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_block(
        cls,
        block: np.ndarray,
        labels: np.ndarray,
        prior: NormalGammaPrior = DEFAULT_PRIOR,
    ) -> "ObsClustering":
        """Build a clustering over ``block`` (rows = member variables)."""
        oc = cls(labels, prior)
        oc.stats = StatsArrays.grouped(block, oc.labels, oc.n_clusters)
        return oc

    def copy(self) -> "ObsClustering":
        out = ObsClustering.__new__(ObsClustering)
        out.labels = self.labels.copy()
        out.n_clusters = self.n_clusters
        out.prior = self.prior
        out.stats = self.stats.copy()
        return out

    # -- scoring ---------------------------------------------------------
    def log_marginals(self) -> np.ndarray:
        return self.stats.log_marginals(self.prior)

    def score(self) -> float:
        return float(self.log_marginals().sum())

    # -- variable membership updates --------------------------------------
    def add_rows(self, rows: np.ndarray) -> None:
        """Account for new member variables (rows of the data block)."""
        rows = np.atleast_2d(rows)
        self.stats.add_arrays(StatsArrays.grouped(rows, self.labels, self.n_clusters))

    def remove_rows(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(rows)
        grouped = StatsArrays.grouped(rows, self.labels, self.n_clusters)
        self.stats.count -= grouped.count
        self.stats.total -= grouped.total
        self.stats.sumsq -= grouped.sumsq

    def row_delta(self, row: np.ndarray) -> np.ndarray:
        """Score change of adding one row to this clustering's block."""
        grouped = StatsArrays.grouped(row, self.labels, self.n_clusters)
        new = log_marginal(
            self.stats.count + grouped.count,
            self.stats.total + grouped.total,
            self.stats.sumsq + grouped.sumsq,
            self.prior,
        )
        return np.asarray(new) - self.log_marginals()

    def rows_delta(self, rows: np.ndarray) -> float:
        """Score change of adding a block of rows (used for cluster merges)."""
        rows = np.atleast_2d(rows)
        grouped = StatsArrays.grouped(rows, self.labels, self.n_clusters)
        new = log_marginal(
            self.stats.count + grouped.count,
            self.stats.total + grouped.total,
            self.stats.sumsq + grouped.sumsq,
            self.prior,
        )
        return float((np.asarray(new) - self.log_marginals()).sum())

    # -- observation moves -------------------------------------------------
    def column_stats(self, column: np.ndarray) -> SuffStats:
        column = np.asarray(column, dtype=np.float64)
        return SuffStats(
            float(column.size), float(column.sum()), float((column * column).sum())
        )

    def move_obs_scores(
        self,
        obs: int,
        column: np.ndarray,
        candidate_range: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Candidate log-weights for moving observation ``obs``.

        Candidates are the ``n_clusters`` existing clusters followed by the
        fresh-singleton option; the current cluster's entry is 0 (the
        "keep" baseline).  ``column`` holds the member variables' values at
        ``obs``.  With ``candidate_range=(lo, hi)`` only that slice of the
        candidate list is computed — the block a rank owns in the parallel
        algorithm (Algorithm 2, lines 6-8).
        """
        lo, hi = candidate_range if candidate_range is not None else (0, self.n_clusters + 1)
        src = int(self.labels[obs])
        cs = self.column_stats(column)
        src_lm = float(log_marginal(*_block_tuple(self.stats, src), self.prior))
        removed = self.stats.block(src).remove(cs)
        rem_delta = removed.log_marginal(self.prior) - src_lm

        hi_clusters = min(hi, self.n_clusters)
        idx = np.arange(lo, hi_clusters)
        lm = log_marginal(
            self.stats.count[idx], self.stats.total[idx], self.stats.sumsq[idx], self.prior
        )
        new = log_marginal(
            self.stats.count[idx] + cs.count,
            self.stats.total[idx] + cs.total,
            self.stats.sumsq[idx] + cs.sumsq,
            self.prior,
        )
        scores = rem_delta + (np.asarray(new) - np.asarray(lm))
        if lo <= src < hi_clusters:
            scores[src - lo] = 0.0
        if lo <= self.n_clusters < hi:
            fresh = rem_delta + cs.log_marginal(self.prior)
            scores = np.append(scores, fresh)
        return scores

    def move_obs(self, obs: int, target: int, column: np.ndarray) -> None:
        """Move ``obs`` to cluster ``target`` (``n_clusters`` = fresh)."""
        src = int(self.labels[obs])
        if target == src:
            return
        cs = self.column_stats(column)
        self.stats.remove_at(src, cs)
        if target == self.n_clusters:
            self.stats.append(cs)
            self.labels[obs] = self.n_clusters
            self.n_clusters += 1
        else:
            self.stats.add_at(target, cs)
            self.labels[obs] = target
        if self.stats.count[src] <= 0:
            self._drop_cluster(src)

    # -- observation-cluster merges -----------------------------------------
    def merge_obs_scores(
        self, cluster: int, candidate_range: tuple[int, int] | None = None
    ) -> np.ndarray:
        """Candidate log-weights for merging ``cluster`` into each other
        cluster; entry ``cluster`` is the "keep" baseline (0).  O(1) per
        candidate because block statistics are additive.  ``candidate_range``
        restricts computation to one rank's block of candidates."""
        lo, hi = candidate_range if candidate_range is not None else (0, self.n_clusters)
        idx = np.arange(lo, min(hi, self.n_clusters))
        lm = np.asarray(
            log_marginal(
                self.stats.count[idx],
                self.stats.total[idx],
                self.stats.sumsq[idx],
                self.prior,
            )
        )
        own_lm = float(log_marginal(*_block_tuple(self.stats, cluster), self.prior))
        merged = log_marginal(
            self.stats.count[idx] + self.stats.count[cluster],
            self.stats.total[idx] + self.stats.total[cluster],
            self.stats.sumsq[idx] + self.stats.sumsq[cluster],
            self.prior,
        )
        scores = np.asarray(merged) - lm - own_lm
        if lo <= cluster < min(hi, self.n_clusters):
            scores[cluster - lo] = 0.0
        return scores

    def merge_obs(self, cluster: int, target: int) -> None:
        if target == cluster:
            return
        self.stats.add_at(target, self.stats.block(cluster))
        self.labels[self.labels == cluster] = target
        self._drop_cluster(cluster)

    def _drop_cluster(self, cluster: int) -> None:
        self.stats.drop(cluster)
        self.labels[self.labels > cluster] -= 1
        self.n_clusters -= 1

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.n_clusters)

    def check_invariants(self, block: np.ndarray) -> None:
        """Verify stats match a fresh recomputation (testing hook)."""
        fresh = StatsArrays.grouped(np.atleast_2d(block), self.labels, self.n_clusters)
        if not (
            np.allclose(fresh.count, self.stats.count)
            and np.allclose(fresh.total, self.stats.total)
            and np.allclose(fresh.sumsq, self.stats.sumsq)
        ):
            raise AssertionError("observation clustering stats drifted")


class VarCluster:
    """A variable cluster: member variables plus their observation clustering."""

    __slots__ = ("members", "obs")

    def __init__(self, members: list[int], obs: ObsClustering) -> None:
        self.members = members
        self.obs = obs

    @property
    def size(self) -> int:
        return len(self.members)


class CoClusterState:
    """The full two-way co-clustering of an expression matrix."""

    def __init__(
        self,
        data: np.ndarray,
        var_labels: np.ndarray,
        obs_labels_per_cluster: list[np.ndarray],
        prior: NormalGammaPrior = DEFAULT_PRIOR,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.prior = prior
        n, _m = self.data.shape
        var_labels = _compact(np.asarray(var_labels, dtype=np.int64))
        n_clusters = int(var_labels.max()) + 1 if n else 0
        if len(obs_labels_per_cluster) != n_clusters:
            raise ValueError("one observation labelling required per variable cluster")
        self.var_labels = var_labels
        self.clusters: list[VarCluster] = []
        for cid in range(n_clusters):
            members = [int(v) for v in np.flatnonzero(var_labels == cid)]
            oc = ObsClustering.from_block(
                self.data[members], obs_labels_per_cluster[cid], prior
            )
            self.clusters.append(VarCluster(members, oc))

    @property
    def n_vars(self) -> int:
        return self.data.shape[0]

    @property
    def n_obs(self) -> int:
        return self.data.shape[1]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def score(self) -> float:
        return sum(cluster.obs.score() for cluster in self.clusters)

    def max_obs_clusters(self) -> int:
        return max((c.obs.n_clusters for c in self.clusters), default=0)

    # -- variable reassignment ------------------------------------------
    def move_var_scores(
        self, var: int, candidate_range: tuple[int, int] | None = None
    ) -> np.ndarray:
        """Candidate log-weights for moving variable ``var``.

        Candidates are the ``n_clusters`` existing clusters followed by the
        fresh-singleton option; the current cluster's entry is the 0
        baseline.  ``candidate_range`` restricts the computation to one
        rank's block of candidates (Algorithm 1, lines 6-8); the removal
        delta (a shared term) is computed by every rank.
        """
        lo, hi = candidate_range if candidate_range is not None else (0, self.n_clusters + 1)
        row = self.data[var]
        src = int(self.var_labels[var])
        src_cluster = self.clusters[src]

        # Score change of removing the row from its current cluster.
        src_oc = src_cluster.obs
        grouped = StatsArrays.grouped(row, src_oc.labels, src_oc.n_clusters)
        removed = log_marginal(
            src_oc.stats.count - grouped.count,
            src_oc.stats.total - grouped.total,
            src_oc.stats.sumsq - grouped.sumsq,
            self.prior,
        )
        rem_delta = float((np.asarray(removed) - src_oc.log_marginals()).sum())

        hi_clusters = min(hi, self.n_clusters)
        scores = rem_delta + self._stacked_row_deltas(row, lo, hi_clusters)
        if lo <= src < hi_clusters:
            scores[src - lo] = 0.0
        if lo <= self.n_clusters < hi:
            # Fresh cluster: one observation cluster holding the whole row.
            fresh_lm = float(
                log_marginal(row.size, row.sum(), (row * row).sum(), self.prior)
            )
            scores = np.append(scores, rem_delta + fresh_lm)
        return scores

    def _stacked_row_deltas(self, row: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Score change of adding ``row`` to each cluster in ``[lo, hi)``.

        All clusters' blocks are scored with one stacked ``bincount`` and
        one vectorized marginal-likelihood call instead of a Python loop
        over clusters — the same arithmetic per block, so results are
        element-for-element identical to the per-cluster path.
        """
        n_cands = hi - lo
        if n_cands <= 0:
            return np.zeros(0, dtype=np.float64)
        label_parts = []
        offset = 0
        bounds = np.empty(n_cands, dtype=np.int64)
        for pos, cid in enumerate(range(lo, hi)):
            oc = self.clusters[cid].obs
            label_parts.append(oc.labels + offset)
            bounds[pos] = offset
            offset += oc.n_clusters
        glabels = np.concatenate(label_parts)
        tiled = np.tile(row, n_cands)
        add_count = np.bincount(glabels, minlength=offset).astype(np.float64)
        add_total = np.bincount(glabels, weights=tiled, minlength=offset)
        add_sumsq = np.bincount(glabels, weights=tiled * tiled, minlength=offset)

        counts = np.concatenate(
            [self.clusters[cid].obs.stats.count for cid in range(lo, hi)]
        )
        totals = np.concatenate(
            [self.clusters[cid].obs.stats.total for cid in range(lo, hi)]
        )
        sumsqs = np.concatenate(
            [self.clusters[cid].obs.stats.sumsq for cid in range(lo, hi)]
        )
        new_lm = np.asarray(
            log_marginal(
                counts + add_count, totals + add_total, sumsqs + add_sumsq, self.prior
            )
        )
        old_lm = np.asarray(log_marginal(counts, totals, sumsqs, self.prior))
        return np.add.reduceat(new_lm - old_lm, bounds)

    def move_var(self, var: int, target: int) -> None:
        """Move ``var`` to cluster ``target`` (``n_clusters`` = fresh)."""
        src = int(self.var_labels[var])
        if target == src:
            return
        row = self.data[var]
        src_cluster = self.clusters[src]
        src_cluster.obs.remove_rows(row)
        src_cluster.members.remove(var)

        if target == self.n_clusters:
            oc = ObsClustering.from_block(
                row[None, :], np.zeros(self.n_obs, dtype=np.int64), self.prior
            )
            self.clusters.append(VarCluster([var], oc))
            self.var_labels[var] = target
        else:
            tgt_cluster = self.clusters[target]
            tgt_cluster.obs.add_rows(row)
            tgt_cluster.members.append(var)
            self.var_labels[var] = target

        if not src_cluster.members:
            self._drop_cluster(src)

    # -- variable-cluster merges ------------------------------------------
    def merge_var_scores(
        self, cluster: int, candidate_range: tuple[int, int] | None = None
    ) -> np.ndarray:
        """Candidate log-weights for merging ``cluster`` into each other
        cluster (which keeps the absorbing cluster's observation
        partition); entry ``cluster`` is the "keep" baseline.
        ``candidate_range`` restricts computation to one rank's block."""
        lo, hi = candidate_range if candidate_range is not None else (0, self.n_clusters)
        block = self.data[self.clusters[cluster].members]
        own_score = self.clusters[cluster].obs.score()
        hi = min(hi, self.n_clusters)
        scores = self._stacked_block_deltas(block, lo, hi) - own_score
        if lo <= cluster < hi:
            scores[cluster - lo] = 0.0
        return scores

    def _stacked_block_deltas(self, block: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Score change of adding ``block``'s rows to each cluster in
        ``[lo, hi)``, via one stacked bincount (see _stacked_row_deltas)."""
        n_cands = hi - lo
        if n_cands <= 0:
            return np.zeros(0, dtype=np.float64)
        block = np.atleast_2d(block)
        n_rows = block.shape[0]
        col_total = block.sum(axis=0)
        col_sumsq = (block * block).sum(axis=0)

        label_parts = []
        offset = 0
        bounds = np.empty(n_cands, dtype=np.int64)
        for pos, cid in enumerate(range(lo, hi)):
            oc = self.clusters[cid].obs
            label_parts.append(oc.labels + offset)
            bounds[pos] = offset
            offset += oc.n_clusters
        glabels = np.concatenate(label_parts)
        add_count = n_rows * np.bincount(glabels, minlength=offset).astype(np.float64)
        add_total = np.bincount(
            glabels, weights=np.tile(col_total, n_cands), minlength=offset
        )
        add_sumsq = np.bincount(
            glabels, weights=np.tile(col_sumsq, n_cands), minlength=offset
        )
        counts = np.concatenate(
            [self.clusters[cid].obs.stats.count for cid in range(lo, hi)]
        )
        totals = np.concatenate(
            [self.clusters[cid].obs.stats.total for cid in range(lo, hi)]
        )
        sumsqs = np.concatenate(
            [self.clusters[cid].obs.stats.sumsq for cid in range(lo, hi)]
        )
        new_lm = np.asarray(
            log_marginal(
                counts + add_count, totals + add_total, sumsqs + add_sumsq, self.prior
            )
        )
        old_lm = np.asarray(log_marginal(counts, totals, sumsqs, self.prior))
        return np.add.reduceat(new_lm - old_lm, bounds)

    def merge_var(self, cluster: int, target: int) -> None:
        if target == cluster:
            return
        src_cluster = self.clusters[cluster]
        tgt_cluster = self.clusters[target]
        block = self.data[src_cluster.members]
        tgt_cluster.obs.add_rows(block)
        tgt_cluster.members.extend(src_cluster.members)
        for var in src_cluster.members:
            self.var_labels[var] = target
        src_cluster.members = []
        self._drop_cluster(cluster)

    def _drop_cluster(self, cluster: int) -> None:
        del self.clusters[cluster]
        self.var_labels[self.var_labels > cluster] -= 1

    # -- invariants --------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify label/membership/stats consistency (testing hook)."""
        seen: set[int] = set()
        for cid, cluster in enumerate(self.clusters):
            if not cluster.members:
                raise AssertionError(f"empty variable cluster {cid}")
            for var in cluster.members:
                if self.var_labels[var] != cid:
                    raise AssertionError(f"label mismatch for variable {var}")
                if var in seen:
                    raise AssertionError(f"variable {var} in two clusters")
                seen.add(var)
            cluster.obs.check_invariants(self.data[cluster.members])
        if len(seen) != self.n_vars:
            raise AssertionError("not all variables assigned")


def _block_tuple(stats: StatsArrays, index: int) -> tuple[float, float, float]:
    return (
        float(stats.count[index]),
        float(stats.total[index]),
        float(stats.sumsq[index]),
    )


def _compact(labels: np.ndarray) -> np.ndarray:
    """Relabel to 0..K-1 by order of first appearance."""
    _, first_idx = np.unique(labels, return_index=True)
    order = labels[np.sort(first_idx)]
    mapping = {int(old): new for new, old in enumerate(order)}
    return np.asarray([mapping[int(v)] for v in labels], dtype=np.int64)


def init_sqrt_obs_labels(n_obs: int, rng, n_clusters: int | None = None) -> np.ndarray:
    """Random observation labels into ``sqrt(m)`` clusters (Algorithm 3)."""
    if n_clusters is None:
        n_clusters = max(1, int(math.isqrt(n_obs)))
    return rng.random_labels(n_obs, n_clusters)
