"""Sweep drivers for the GaneSH Gibbs sampler (Algorithm 3).

The drivers consume randomness from a :class:`repro.rng.streams.GibbsRandom`
in a fixed call order — one ``randint`` plus one ``weighted_choice_logs`` per
Gibbs iteration — which is the contract that keeps the optimized, reference
and parallel implementations on identical trajectories (Section 4.2 of the
paper: same PRNG, same stream positions, on every implementation and rank).

Every Gibbs iteration optionally reports its per-candidate cost vector to a
trace recorder (see :mod:`repro.parallel.trace`); the parallel engine uses
those vectors to account per-rank work for Algorithms 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ganesh.state import CoClusterState, ObsClustering, init_sqrt_obs_labels
from repro.rng.streams import GibbsRandom, make_stream
from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior


@dataclass
class GaneshResult:
    """Output of one GaneSH run."""

    state: CoClusterState
    #: variable-cluster labels sampled at the end of the run
    var_labels: np.ndarray
    #: Gibbs iterations performed (for reporting)
    n_iterations: int = 0


@dataclass
class SweepHooks:
    """Optional instrumentation callbacks.

    ``record(phase, costs, n_collectives)`` is invoked once per Gibbs
    iteration with the per-candidate work vector (arbitrary units) of the
    score computations that Algorithms 1 and 2 partition across ranks, and
    the number of collective calls the iteration performs.
    """

    record: object = None

    def emit(self, phase: str, costs: np.ndarray, n_collectives: int = 2) -> None:
        if self.record is not None:
            self.record(phase, costs, n_collectives)


_NO_HOOKS = SweepHooks()


def reassign_var_sweep(
    state: CoClusterState, rng: GibbsRandom, hooks: SweepHooks = _NO_HOOKS
) -> None:
    """n iterations of random variable reassignment (Algorithm 1, lines 3-11)."""
    n = state.n_vars
    m = state.n_obs
    for _ in range(n):
        var = rng.randint(n)
        scores = state.move_var_scores(var)
        costs = np.array(
            [m + c.obs.n_clusters for c in state.clusters] + [m], dtype=np.float64
        )
        hooks.emit("ganesh.var_reassign", costs)
        choice = rng.weighted_choice_logs(scores)
        state.move_var(var, choice)


def merge_var_sweep(
    state: CoClusterState, rng: GibbsRandom, hooks: SweepHooks = _NO_HOOKS
) -> None:
    """One pass of variable-cluster merging (Algorithm 1, lines 12-20).

    Clusters are considered one at a time; a "keep" decision advances to the
    next cluster, a merge removes the current cluster and stays at the same
    index (the next unexamined cluster shifts into it).
    """
    m = state.n_obs
    cid = 0
    while cid < state.n_clusters:
        scores = state.merge_var_scores(cid)
        costs = np.array(
            [m + c.obs.n_clusters for c in state.clusters], dtype=np.float64
        )
        hooks.emit("ganesh.var_merge", costs)
        choice = rng.weighted_choice_logs(scores)
        if choice == cid:
            cid += 1
        else:
            state.merge_var(cid, choice)


def reassign_obs_sweep(
    oc: ObsClustering,
    block: np.ndarray,
    rng: GibbsRandom,
    hooks: SweepHooks = _NO_HOOKS,
    phase: str = "ganesh.obs_reassign",
) -> None:
    """m iterations of random observation reassignment (Algorithm 2, lines 3-11)."""
    n_members, m = block.shape
    for _ in range(m):
        obs = rng.randint(m)
        column = block[:, obs]
        scores = oc.move_obs_scores(obs, column)
        costs = np.full(oc.n_clusters + 1, float(n_members + 1))
        hooks.emit(phase, costs)
        choice = rng.weighted_choice_logs(scores)
        oc.move_obs(obs, choice, column)


def merge_obs_sweep(
    oc: ObsClustering,
    rng: GibbsRandom,
    hooks: SweepHooks = _NO_HOOKS,
    phase: str = "ganesh.obs_merge",
) -> None:
    """One pass of observation-cluster merging (Algorithm 2, lines 12-20)."""
    cid = 0
    while cid < oc.n_clusters:
        scores = oc.merge_obs_scores(cid)
        costs = np.ones(oc.n_clusters, dtype=np.float64)
        hooks.emit(phase, costs)
        choice = rng.weighted_choice_logs(scores)
        if choice == cid:
            cid += 1
        else:
            oc.merge_obs(cid, choice)


def run_ganesh(
    data: np.ndarray,
    rng: GibbsRandom,
    n_update_steps: int = 1,
    init_var_clusters: int | None = None,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
    hooks: SweepHooks = _NO_HOOKS,
) -> GaneshResult:
    """One full GaneSH co-clustering run (Algorithm 3).

    Variables start in ``init_var_clusters`` random clusters (``n // 2`` if
    not given, as in Lemon-Tree); observations of each variable cluster
    start in ``sqrt(m)`` random clusters.  Each update step runs a variable
    reassignment sweep, a variable merge sweep, then observation
    reassignment and merge sweeps for every variable cluster.
    """
    data = np.asarray(data, dtype=np.float64)
    n, m = data.shape
    k0 = init_var_clusters if init_var_clusters is not None else max(1, n // 2)
    k0 = min(max(1, int(k0)), n)

    # Compaction may renumber; build per-cluster observation labels in the
    # compacted order so the RNG call order is well defined.
    from repro.ganesh.state import _compact  # deterministic relabelling

    var_labels = _compact(rng.random_labels(n, k0))
    n_clusters = int(var_labels.max()) + 1
    obs_labels = [init_sqrt_obs_labels(m, rng) for _ in range(n_clusters)]
    state = CoClusterState(data, var_labels, obs_labels, prior)

    iterations = 0
    for _ in range(n_update_steps):
        reassign_var_sweep(state, rng, hooks)
        merge_var_sweep(state, rng, hooks)
        for cluster in list(state.clusters):
            if not cluster.members:  # merged away earlier in this loop
                continue
            block = data[cluster.members]
            reassign_obs_sweep(cluster.obs, block, rng, hooks)
            merge_obs_sweep(cluster.obs, rng, hooks)
        iterations += 1

    return GaneshResult(
        state=state, var_labels=state.var_labels.copy(), n_iterations=iterations
    )


def run_replicated_ganesh(
    data: np.ndarray,
    seed: int,
    run_index: int,
    n_update_steps: int = 1,
    init_var_clusters: int | None = None,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
    rng_backend: str = "philox",
    hooks: SweepHooks = _NO_HOOKS,
) -> np.ndarray:
    """GaneSH run ``run_index`` of a G-run ensemble, on its own stream.

    Task 1 runs G independent chains whose only coupling is the data
    matrix; each draws exclusively from the named ``("ganesh", g)`` stream,
    so the sampled labels are a pure function of ``(seed, run_index)`` —
    identical whether the runs execute sequentially, on a process pool in
    any completion order, or as separate cluster jobs (Section 3.2.1's
    communication-free group parallelism).
    """
    rng = GibbsRandom(make_stream(seed, "ganesh", run_index, backend=rng_backend))
    result = run_ganesh(
        data,
        rng,
        n_update_steps=n_update_steps,
        init_var_clusters=init_var_clusters,
        prior=prior,
        hooks=hooks,
    )
    return result.var_labels


def run_obs_only_ganesh(
    block: np.ndarray,
    rng: GibbsRandom,
    n_update_steps: int = 1,
    burn_in: int = 0,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
    hooks: SweepHooks = _NO_HOOKS,
) -> list[np.ndarray]:
    """GaneSH constrained to a single variable cluster (Algorithm 4, lines 3-9).

    Used by the module-learning task to sample observation clusterings for
    one module: only the observation sweeps run, and after ``burn_in``
    update steps each subsequent clustering is sampled into the output
    ensemble.  With ``n_update_steps == 1`` and ``burn_in == 0`` exactly one
    clustering is sampled — the paper's minimum-run-time configuration.
    """
    block = np.atleast_2d(np.asarray(block, dtype=np.float64))
    m = block.shape[1]
    labels = init_sqrt_obs_labels(m, rng)
    oc = ObsClustering.from_block(block, labels, prior)

    samples: list[np.ndarray] = []
    for step in range(1, n_update_steps + 1):
        reassign_obs_sweep(oc, block, rng, hooks, phase="modules.obs_reassign")
        merge_obs_sweep(oc, rng, hooks, phase="modules.obs_merge")
        if step > burn_in or step == n_update_steps and not samples:
            samples.append(oc.labels.copy())
    return samples
