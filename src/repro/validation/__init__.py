"""Scenario-matrix validation: adversarial generators + differential testing.

The public surface:

* :func:`repro.validation.run_matrix` — run every selected scenario
  through the full backend grid and return a
  :class:`~repro.validation.report.MatrixReport`;
* :data:`repro.validation.SCENARIOS` — the scenario registry;
* ``repro validate`` — the CLI entry point emitting the JSON report.
"""

from repro.validation.metrics import network_fingerprint, recovery_metrics
from repro.validation.report import ComboResult, MatrixReport, ScenarioResult
from repro.validation.runner import (
    BackendCombo,
    backend_grid,
    run_matrix,
    run_scenario,
)
from repro.validation.scenarios import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    Scenario,
    ToleranceBand,
    get_scenario,
    select_scenarios,
)

__all__ = [
    "BackendCombo",
    "ComboResult",
    "MatrixReport",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ToleranceBand",
    "backend_grid",
    "get_scenario",
    "network_fingerprint",
    "recovery_metrics",
    "run_matrix",
    "run_scenario",
    "select_scenarios",
]
