"""Ground-truth recovery metrics and network fingerprints.

The differential harness needs two kinds of measurements:

* **bit-identity** between backend combinations — established by hashing
  the network's canonical signature (assignment, tree structure, selected
  splits, parent scores), the same summary :meth:`ModuleNetwork.__eq__`
  compares;
* **ground-truth recovery** against the generative structure — module
  ARI plus regulator precision/recall (Michoel et al.'s validation
  protocol), judged against per-scenario tolerance bands.
"""

from __future__ import annotations

import hashlib

from repro.analysis.recovery import module_recovery_score, parent_recovery
from repro.data.synthetic import GroundTruth
from repro.datatypes import ModuleNetwork


def network_fingerprint(network: ModuleNetwork) -> str:
    """A stable hex digest of the network's canonical signature.

    Two networks have equal fingerprints iff they compare equal under
    :meth:`ModuleNetwork.__eq__` (both hash the same
    :meth:`~ModuleNetwork.signature` value), so fingerprint comparison is
    exactly the bit-identity bar the paper's output-consistency property
    demands — but reportable as a short string in the JSON scenario report.
    """
    return hashlib.sha256(repr(network.signature()).encode()).hexdigest()


def recovery_metrics(
    network: ModuleNetwork, truth: GroundTruth | None, top_k: int = 3
) -> dict[str, float]:
    """Module-ARI and regulator precision/recall against generative truth.

    Returns an empty dict for scenarios without a meaningful ground truth
    (fully degenerate matrices where the generative labels carry no
    signal by construction).
    """
    if truth is None:
        return {}
    parents = parent_recovery(network, truth, top_k=top_k)
    return {
        "module_ari": float(module_recovery_score(network, truth)),
        "regulator_precision": float(parents["precision"]),
        "regulator_recall": float(parents["recall"]),
    }
