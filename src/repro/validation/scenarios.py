"""The scenario registry: parameterized adversarial data regimes.

Every backend the runtime has grown (sequential learner, SPMD engine,
task-pool executor, NumPy and native scoring kernels, both RNG backends)
proves itself against the *same* scenario grid: clean module structure,
noise regimes, exact score ties, duplicate and constant genes, missing
data, degenerate module counts, near-singular sufficient statistics and
extreme value scales.  Each scenario is a deterministic function of its
seed, built on the Segal-style generative process in
:mod:`repro.data.synthetic`, so the differential harness can re-generate
identical inputs in every backend configuration.

A scenario carries a :class:`ToleranceBand`: the minimum ground-truth
recovery (module ARI, regulator precision/recall) the *reference* run must
reach.  Bands are deliberately loose — they are tripwires for gross
regressions (a backend that stops finding structure at all), not accuracy
benchmarks; adversarial regimes whose ground truth is destroyed by
construction (ties, constants) carry no band and are checked for
bit-identity and crash-freedom only.

Adding a scenario: write a builder ``(n_vars, n_obs, seed) ->
SyntheticDataset`` (or reuse :func:`make_module_dataset` with new knobs),
then register a :class:`Scenario` in :data:`SCENARIOS` with full and smoke
shapes and a tolerance band calibrated from a reference run (see
``docs/ALGORITHMS.md`` section 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.data.synthetic import GroundTruth, SyntheticDataset, make_module_dataset
from repro.datatypes import ExpressionMatrix


@dataclass(frozen=True)
class ToleranceBand:
    """Minimum recovery metrics the reference run must reach."""

    min_module_ari: float | None = None
    min_regulator_precision: float | None = None
    min_regulator_recall: float | None = None

    def violations(self, metrics: dict[str, float]) -> list[str]:
        """Human-readable violations of this band by ``metrics``."""
        out = []
        for key, floor in (
            ("module_ari", self.min_module_ari),
            ("regulator_precision", self.min_regulator_precision),
            ("regulator_recall", self.min_regulator_recall),
        ):
            if floor is None:
                continue
            value = metrics.get(key)
            if value is None:
                out.append(f"{key} missing (floor {floor})")
            elif value < floor:
                out.append(f"{key}={value:.3f} below floor {floor}")
        return out


@dataclass(frozen=True)
class Scenario:
    """One cell of the validation matrix."""

    name: str
    description: str
    #: ``(n_vars, n_obs, seed) -> SyntheticDataset``
    build: Callable[[int, int, int], SyntheticDataset]
    #: matrix shape for the full grid / the CI smoke grid
    full_shape: tuple[int, int] = (28, 16)
    smoke_shape: tuple[int, int] = (16, 10)
    tolerance: ToleranceBand = field(default_factory=ToleranceBand)
    #: False when the generative labels are destroyed by construction
    #: (recovery metrics are then omitted from the report)
    score_truth: bool = True
    #: per-scenario LearnerConfig field overrides
    learner_overrides: dict = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def generate(self, seed: int, smoke: bool = False) -> SyntheticDataset:
        n_vars, n_obs = self.smoke_shape if smoke else self.full_shape
        return self.build(n_vars, n_obs, seed)


# -- builders ---------------------------------------------------------------


def _baseline(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    return make_module_dataset(
        n_vars, n_obs, n_modules=max(2, n_vars // 8), noise=0.3,
        heavy_tail=0.0, seed=seed, name="clean-baseline",
    )


def _heavy_noise(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    return make_module_dataset(
        n_vars, n_obs, n_modules=max(2, n_vars // 8), noise=1.5,
        heavy_tail=0.4, seed=seed, name="heavy-noise",
    )


def _constant_genes(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    """A third of the genes report a flat constant: zero-variance blocks."""
    ds = _baseline(n_vars, n_obs, seed)
    values = ds.matrix.values.copy()
    flat = np.arange(n_vars)[:: 3]
    values[flat] = 1.0
    return SyntheticDataset(
        matrix=ExpressionMatrix(values, ds.matrix.var_names, ds.matrix.obs_names),
        truth=ds.truth,
        name="constant-genes",
    )


def _duplicate_genes(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    """Exact duplicate rows: identical split scores wherever they appear."""
    ds = _baseline(n_vars, n_obs, seed)
    values = ds.matrix.values.copy()
    for i in range(0, n_vars - 1, 4):
        values[i + 1] = values[i]
    return SyntheticDataset(
        matrix=ExpressionMatrix(values, ds.matrix.var_names, ds.matrix.obs_names),
        truth=ds.truth,
        name="duplicate-genes",
    )


def _tie_grid(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    """Every row is the same profile: every candidate split scores equal.

    The most adversarial regime for deterministic tie-breaking — any
    backend whose reduction or dispatch order leaks into argmax selection
    diverges here first.  The generative labels are meaningless, so only
    bit-identity is checked.
    """
    rng = np.random.default_rng(seed)
    row = rng.normal(size=n_obs)
    values = np.tile(row, (n_vars, 1))
    truth = GroundTruth(module_of_gene=np.zeros(n_vars, dtype=np.int64))
    return SyntheticDataset(
        matrix=ExpressionMatrix(values), truth=truth, name="tie-grid"
    )


def _missing_data(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    return make_module_dataset(
        n_vars, n_obs, n_modules=max(2, n_vars // 8), noise=0.3,
        heavy_tail=0.0, missing_rate=0.15, seed=seed, name="missing-data",
    )


def _heavy_missing(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    return make_module_dataset(
        n_vars, n_obs, n_modules=max(2, n_vars // 8), noise=0.4,
        heavy_tail=0.1, missing_rate=0.5, seed=seed, name="heavy-missing",
    )


def _few_observations(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    """The minimum-observation regime: leaves hold single observations."""
    return make_module_dataset(
        n_vars, 4, n_modules=max(2, n_vars // 8), noise=0.3,
        heavy_tail=0.0, seed=seed, name="few-observations",
    )


def _single_module(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    return make_module_dataset(
        n_vars, n_obs, n_modules=1, noise=0.3, heavy_tail=0.0, seed=seed,
        name="single-module",
    )


def _many_tiny_modules(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    return make_module_dataset(
        n_vars, n_obs, n_modules=n_vars // 2, noise=0.3, heavy_tail=0.0,
        seed=seed, name="many-tiny-modules",
    )


def _near_singular(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    """Within-module scatter ~1e-8: sum-of-squares terms cancel to the
    edge of float64, stressing the normal-gamma tail and suffstats
    add/remove algebra."""
    return make_module_dataset(
        n_vars, n_obs, n_modules=max(2, n_vars // 8), noise=1e-8,
        heavy_tail=0.0, seed=seed, name="near-singular",
    )


def _extreme_scale(n_vars: int, n_obs: int, seed: int) -> SyntheticDataset:
    """Values shifted to 1e8 with 1e6 spread, plus per-row magnitude skew
    spanning 1e-6..1e6 — catastrophic-cancellation territory."""
    ds = _baseline(n_vars, n_obs, seed)
    rng = np.random.default_rng(seed + 1)
    scale = 10.0 ** rng.uniform(-6, 6, size=n_vars)
    values = ds.matrix.values * scale[:, None] * 1e6 + 1e8
    return SyntheticDataset(
        matrix=ExpressionMatrix(values, ds.matrix.var_names, ds.matrix.obs_names),
        truth=ds.truth,
        name="extreme-scale",
    )


_LOOSE = ToleranceBand(min_module_ari=0.05, min_regulator_recall=0.0)

SCENARIOS: dict[str, Scenario] = {
    spec.name: spec
    for spec in (
        Scenario(
            name="clean-baseline",
            description="moderate noise, clear module structure",
            build=_baseline,
            smoke_shape=(20, 12),
            # Observed reference recovery is 0.47-0.91 ARI across seeds and
            # shapes under these settings; 0.25 trips only a gross
            # structure-finding regression, not sampling variance.
            tolerance=ToleranceBand(
                min_module_ari=0.25, min_regulator_recall=0.0
            ),
            learner_overrides={"n_ganesh_runs": 3, "n_update_steps": 3},
            tags=("recovery",),
        ),
        Scenario(
            name="heavy-noise",
            description="sigma=1.5 scatter with 40% heavy-tail outliers",
            build=_heavy_noise,
            tags=("noise",),
        ),
        Scenario(
            name="constant-genes",
            description="a third of the genes are a flat constant",
            build=_constant_genes,
            tags=("degenerate", "ties"),
        ),
        Scenario(
            name="duplicate-genes",
            description="exact duplicate rows force identical split scores",
            build=_duplicate_genes,
            tags=("ties",),
        ),
        Scenario(
            name="tie-grid",
            description="all rows identical: every split scores equal",
            build=_tie_grid,
            score_truth=False,
            tags=("ties", "degenerate"),
        ),
        Scenario(
            name="missing-data",
            description="15% NaN dropout, row-mean imputed before learning",
            build=_missing_data,
            smoke_shape=(20, 12),
            tolerance=_LOOSE,
            learner_overrides={"n_ganesh_runs": 3, "n_update_steps": 3},
            tags=("missing", "recovery"),
        ),
        Scenario(
            name="heavy-missing",
            description="50% NaN dropout, row-mean imputed before learning",
            build=_heavy_missing,
            tags=("missing",),
        ),
        Scenario(
            name="few-observations",
            description="4 observations: leaves hold single observations",
            build=_few_observations,
            tags=("degenerate",),
        ),
        Scenario(
            name="single-module",
            description="one generative module holds every gene",
            build=_single_module,
            tags=("degenerate",),
        ),
        Scenario(
            name="many-tiny-modules",
            description="n/2 modules: most hold one or two genes",
            build=_many_tiny_modules,
            tags=("degenerate",),
        ),
        Scenario(
            name="near-singular",
            description="within-module variance ~1e-16: suffstats cancel "
                        "to the edge of float64",
            build=_near_singular,
            tags=("numeric",),
        ),
        Scenario(
            name="extreme-scale",
            description="magnitudes spanning 1e-6..1e6 around a 1e8 offset",
            build=_extreme_scale,
            tags=("numeric",),
        ),
    )
}

#: the reduced grid exercised on every PR (CI scenario-smoke) — one
#: scenario per failure family, at smoke shapes
SMOKE_SCENARIOS = (
    "clean-baseline",
    "tie-grid",
    "missing-data",
    "near-singular",
    "extreme-scale",
)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None


def select_scenarios(
    names: Iterable[str] | None = None, smoke: bool = False
) -> list[Scenario]:
    """The scenario list for a run: explicit names, the smoke subset, or
    the full registry."""
    if names:
        return [get_scenario(name) for name in names]
    if smoke:
        return [SCENARIOS[name] for name in SMOKE_SCENARIOS]
    return list(SCENARIOS.values())
