"""Structured results of a scenario-matrix run.

The report is the harness's contract with CI and with humans: every
(scenario x backend-combination) cell records the network fingerprint it
produced, whether it matched the sequential reference, the wall time, and
any crash — and the scenario rolls those up with the reference run's
ground-truth recovery metrics and tolerance-band verdict.  ``to_json``
emits the whole matrix as one document (the ``repro validate`` output);
``summarize`` renders the terminal table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class ComboResult:
    """One backend combination's outcome on one scenario."""

    n_workers: int
    kernel_backend: str
    rng_backend: str
    #: shard nodes (>1 = the combo ran on the multi-node tier)
    n_nodes: int = 1
    node_backend: str = "socket"
    fingerprint: str | None = None
    #: matched the sequential reference for the same RNG backend
    identical: bool = False
    seconds: float = 0.0
    error: str | None = None

    @property
    def label(self) -> str:
        label = f"w={self.n_workers}/{self.kernel_backend}/{self.rng_backend}"
        if self.n_nodes > 1:
            label = f"n={self.n_nodes}({self.node_backend})/" + label
        return label

    def to_dict(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "kernel_backend": self.kernel_backend,
            "rng_backend": self.rng_backend,
            "n_nodes": self.n_nodes,
            "node_backend": self.node_backend,
            "fingerprint": self.fingerprint,
            "identical": self.identical,
            "seconds": round(self.seconds, 4),
            "error": self.error,
        }


@dataclass
class ScenarioResult:
    """One scenario's outcome across the whole backend grid."""

    name: str
    description: str
    shape: tuple[int, int]
    seed: int
    #: reference fingerprint per RNG backend (the oracle each combo must hit)
    reference: dict[str, str] = field(default_factory=dict)
    combos: list[ComboResult] = field(default_factory=list)
    #: recovery metrics of the reference run (empty for truth-free scenarios)
    metrics: dict[str, float] = field(default_factory=dict)
    #: tolerance-band violations of the reference metrics
    band_violations: list[str] = field(default_factory=list)

    @property
    def divergent(self) -> list[ComboResult]:
        return [c for c in self.combos if c.error is None and not c.identical]

    @property
    def crashed(self) -> list[ComboResult]:
        return [c for c in self.combos if c.error is not None]

    @property
    def ok(self) -> bool:
        return not self.divergent and not self.crashed and not self.band_violations

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "shape": list(self.shape),
            "seed": self.seed,
            "ok": self.ok,
            "reference_fingerprints": self.reference,
            "metrics": {k: round(v, 6) for k, v in self.metrics.items()},
            "band_violations": self.band_violations,
            "combos": [c.to_dict() for c in self.combos],
        }


@dataclass
class MatrixReport:
    """The full scenario-matrix run."""

    smoke: bool
    seed: int
    scenarios: list[ScenarioResult] = field(default_factory=list)
    #: the backend grid that was exercised (for report readers)
    grid: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def n_combos(self) -> int:
        return sum(len(s.combos) for s in self.scenarios)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "smoke": self.smoke,
            "seed": self.seed,
            "grid": self.grid,
            "n_scenarios": len(self.scenarios),
            "n_combos": self.n_combos,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summarize(self) -> str:
        """The terminal table: one row per scenario."""
        lines = [
            f"{'scenario':<18} {'shape':>8} {'combos':>7} {'identical':>10} "
            f"{'ARI':>6} {'verdict':>8}"
        ]
        for s in self.scenarios:
            n_identical = sum(1 for c in s.combos if c.identical)
            ari = s.metrics.get("module_ari")
            ari_text = "-" if ari is None else f"{ari:.2f}"
            verdict = "ok" if s.ok else "FAIL"
            lines.append(
                f"{s.name:<18} {s.shape[0]}x{s.shape[1]:<5} "
                f"{len(s.combos):>7} {n_identical:>9}/{len(s.combos)} "
                f"{ari_text:>6} {verdict:>8}"
            )
            for combo in s.divergent:
                lines.append(f"    DIVERGED {combo.label}: {combo.fingerprint}")
            for combo in s.crashed:
                lines.append(f"    CRASHED  {combo.label}: {combo.error}")
            for violation in s.band_violations:
                lines.append(f"    BAND     {violation}")
        mode = "smoke" if self.smoke else "full"
        lines.append(
            f"{len(self.scenarios)} scenario(s), {self.n_combos} backend "
            f"combination(s), {mode} grid: "
            + ("all bit-identical within RNG backend"
               if self.ok else "FAILURES above")
        )
        return "\n".join(lines)
