"""The differential-testing harness: scenarios x backend combinations.

For each scenario the runner generates the matrix once, learns the
reference network with the sequential NumPy configuration, then replays
the identical input through every backend combination — worker counts x
scoring-kernel backends x RNG backends — and compares network
fingerprints.  Within one RNG backend every combination must be
*bit-identical* to the reference (the paper's output-consistency
property); the two RNG backends are independent oracles with their own
reference fingerprints.  Ground-truth recovery metrics are computed from
the reference network and judged against the scenario's tolerance band.

Crashes are first-class results: a combination that raises is recorded
with its error and fails the scenario instead of aborting the matrix, so
one degenerate regime cannot hide another's divergence.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, replace

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.datatypes import ExpressionMatrix
from repro.validation.metrics import network_fingerprint, recovery_metrics
from repro.validation.report import ComboResult, MatrixReport, ScenarioResult
from repro.validation.scenarios import Scenario, select_scenarios

#: RNG backends are independent oracles — both grids always run
RNG_BACKENDS = ("philox", "mrg")


@dataclass(frozen=True)
class BackendCombo:
    """One cell of the backend grid."""

    n_workers: int
    kernel_backend: str
    rng_backend: str
    #: shard nodes (>1 routes through the multi-node tier)
    n_nodes: int = 1
    node_backend: str = "socket"


def _native_available() -> bool:
    from repro.scoring.kernel import resolve_kernel_backend

    return resolve_kernel_backend("auto")[0] == "native"


def backend_grid(
    smoke: bool = False,
    worker_counts: tuple[int, ...] | None = None,
    node_counts: tuple[int, ...] | None = None,
    node_backend: str = "socket",
) -> list[BackendCombo]:
    """The backend combinations to differentiate against the reference.

    Smoke mode shrinks only the grid (fewer worker counts); it never
    weakens the bit-identity assertion on the combinations that do run.
    The native kernel joins the grid whenever the extension certifies on
    this machine — silently absent otherwise, exactly like
    ``kernel_backend="auto"``.

    ``node_counts`` adds a shard axis: each count > 1 runs the scenarios
    on the multi-node tier (:mod:`repro.parallel.sharding`) with one
    worker per node, for both RNG backends, asserting the same
    bit-identity against the sequential reference.
    """
    if worker_counts is None:
        worker_counts = (1, 2) if smoke else (1, 2, 4)
    kernels = ["numpy"]
    if _native_available():
        kernels.append("native")
    grid = [
        BackendCombo(w, kernel, rng)
        for rng in RNG_BACKENDS
        for kernel in kernels
        for w in worker_counts
        # w=1/numpy *is* the reference; re-running it would differentiate
        # nothing, but w=1/native is a real cell (kernel swap, no pool).
        if not (w == 1 and kernel == "numpy")
    ]
    if node_counts:
        grid.extend(
            BackendCombo(1, "numpy", rng, n_nodes=n, node_backend=node_backend)
            for rng in RNG_BACKENDS
            for n in node_counts
            # a 1-node shard tier differentiates nothing beyond w=1/numpy
            if n > 1
        )
    return grid


def _base_config(spec: Scenario) -> LearnerConfig:
    """The learner configuration a scenario runs under.

    Two GaneSH runs so Task 1 genuinely fans out on the executor; short
    sampling chains keep the full grid tractable.  Scenario overrides win.
    """
    base = dict(n_ganesh_runs=2, max_sampling_steps=4)
    base.update(spec.learner_overrides)
    return LearnerConfig(**base)


def _combo_config(
    base: LearnerConfig, combo: BackendCombo
) -> LearnerConfig:
    return replace(
        base,
        rng_backend=combo.rng_backend,
        parallel=ParallelConfig(
            n_workers=combo.n_workers,
            kernel_backend=combo.kernel_backend,
            n_nodes=combo.n_nodes,
            node_backend=combo.node_backend,
        ),
    )


def _learn_fingerprint(
    matrix: ExpressionMatrix, config: LearnerConfig, seed: int
):
    network = LemonTreeLearner(config).learn(matrix, seed=seed).network
    return network, network_fingerprint(network)


def run_scenario(
    spec: Scenario,
    seed: int = 0,
    smoke: bool = False,
    combos: list[BackendCombo] | None = None,
) -> ScenarioResult:
    """Run one scenario through the full backend grid."""
    if combos is None:
        combos = backend_grid(smoke)
    dataset = spec.generate(seed, smoke=smoke)
    matrix = dataset.matrix
    if matrix.has_missing:
        # Missing data is resolved once, up front; every backend sees the
        # same imputed matrix (learning on NaN is rejected by design).
        matrix = matrix.impute_missing()
    base = _base_config(spec)

    result = ScenarioResult(
        name=spec.name,
        description=spec.description,
        shape=matrix.shape,
        seed=seed,
    )
    for rng_backend in RNG_BACKENDS:
        reference_config = _combo_config(
            base, BackendCombo(1, "numpy", rng_backend)
        )
        network, fingerprint = _learn_fingerprint(matrix, reference_config, seed)
        result.reference[rng_backend] = fingerprint
        if rng_backend == RNG_BACKENDS[0] and spec.score_truth:
            result.metrics = recovery_metrics(network, dataset.truth)
            result.band_violations = spec.tolerance.violations(result.metrics)

    for combo in combos:
        cell = ComboResult(
            n_workers=combo.n_workers,
            kernel_backend=combo.kernel_backend,
            rng_backend=combo.rng_backend,
            n_nodes=combo.n_nodes,
            node_backend=combo.node_backend,
        )
        t0 = time.perf_counter()
        try:
            _, cell.fingerprint = _learn_fingerprint(
                matrix, _combo_config(base, combo), seed
            )
            cell.identical = (
                cell.fingerprint == result.reference[combo.rng_backend]
            )
        except Exception as err:  # a crash is a result, not an abort
            cell.error = "".join(
                traceback.format_exception_only(type(err), err)
            ).strip()
        cell.seconds = time.perf_counter() - t0
        result.combos.append(cell)
    return result


def run_matrix(
    scenario_names: list[str] | None = None,
    seed: int = 0,
    smoke: bool = False,
    worker_counts: tuple[int, ...] | None = None,
    node_counts: tuple[int, ...] | None = None,
    node_backend: str = "socket",
    progress=None,
) -> MatrixReport:
    """Run the scenario matrix: every selected scenario x the backend grid.

    ``progress`` is an optional callable receiving each completed
    :class:`ScenarioResult` (the CLI uses it to stream the table).
    """
    combos = backend_grid(smoke, worker_counts, node_counts, node_backend)
    scenarios = select_scenarios(scenario_names, smoke=smoke)
    report = MatrixReport(
        smoke=smoke,
        seed=seed,
        grid={
            "worker_counts": sorted({c.n_workers for c in combos} | {1}),
            "kernel_backends": sorted({c.kernel_backend for c in combos}),
            "rng_backends": list(RNG_BACKENDS),
            "native_available": _native_available(),
            "node_counts": sorted({c.n_nodes for c in combos} | {1}),
            "node_backend": node_backend,
        },
    )
    for spec in scenarios:
        result = run_scenario(spec, seed=seed, smoke=smoke, combos=combos)
        report.scenarios.append(result)
        if progress is not None:
            progress(result)
    return report
