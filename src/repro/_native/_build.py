"""cffi build recipe for the ``repro._native`` split-scoring extension.

The C core replicates the NumPy scoring path *operation for operation* so
that its results are bit-identical (see ``docs/ALGORITHMS.md`` §13):

* the stable log-sigmoid chain ``t = log1p(exp(-|z|));
  where(z > 0, -t, z - t)`` is evaluated through the **same transcendental
  code NumPy itself dispatches to** — on AVX-512 machines NumPy's
  ``_multiarray_umath`` shared object exports its bundled Intel SVML
  kernels (``__svml_exp8_ha`` / ``__svml_log1p8_ha`` / ``__svml_log8_ha``),
  which ``repro_native_init`` resolves with ``dlopen``/``dlsym`` and calls
  eight lanes at a time; the scalar-libm provider covers builds where NumPy
  itself routes through libm;
* row reduction uses NumPy's pairwise-summation algorithm (blocks of eight
  with eight partial accumulators, halving recursion above 128 elements);
* quantization is C ``rint`` (round-half-even), the exact semantics of
  ``np.round`` at ``decimals=0``;
* negation and absolute value are sign-bit flips/masks, matching
  ``np.negative`` / ``np.abs`` on signed zeros;
* grouped sufficient statistics replicate ``np.bincount`` (sequential
  accumulation in index order) and ``.sum(axis=0)`` (sequential row
  accumulation for multi-column arrays, pairwise for the single-column
  case, which NumPy reduces as a contiguous vector).

Used two ways: ``setup.py`` consumes ``ffibuilder`` for an ahead-of-time
extension build when ``REPRO_BUILD_NATIVE`` is set, and
``repro._native.load`` compiles the same recipe on demand into a cache
directory when no prebuilt module exists.  Either way the loader certifies
the compiled code against NumPy on a probe battery before it is ever used.
"""

from __future__ import annotations

from cffi import FFI

ffibuilder = FFI()

CDEF = """
int repro_native_init(const char *umath_path, int want_svml);
int repro_native_provider(void);
int repro_eval_chunk(const double *group_value, const int64_t *group_row,
                     int64_t n_rows, const double *values, int64_t n_obs,
                     const double *sign, double beta, double quantum,
                     double *out);
int repro_grouped_1d(const double *vals, int64_t n, const int64_t *labels,
                     int64_t n_groups, double *count, double *total,
                     double *sumsq);
int repro_grouped_2d(const double *vals, int64_t rows, int64_t cols,
                     const int64_t *labels, int64_t n_groups, double *count,
                     double *total, double *sumsq);
int repro_log_marginal(const double *n, const double *s, const double *q,
                       const double *lgam_alpha_n, int64_t size, double mu0,
                       double lambda0, double alpha0, double beta0,
                       double log_lambda0, double log_beta0,
                       double lgamma_alpha0, double log_2pi, double *out);
"""

CSOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(REPRO_NO_AVX512)
#define REPRO_HAVE_AVX512 1
#include <dlfcn.h>
#include <immintrin.h>
#endif

static int use_svml = 0;

#if REPRO_HAVE_AVX512
typedef __m512d (*svml8_fn)(__m512d);
static svml8_fn p_exp8, p_log1p8, p_log8;

/* The stable log-sigmoid over one margin row, eight lanes at a time via
 * the SVML kernels NumPy's own exp/log1p loops call.  Negation and abs
 * are sign-bit ops so signed zeros match np.negative/np.abs exactly; the
 * where(z > 0, ...) select uses an ordered compare (NaN -> false), the
 * semantics of np.greater. */
__attribute__((target("avx512f")))
static void row_fill_svml(double gv, const double *vrow, const double *sgn,
                          double beta, double *row, int64_t n)
{
    const __m512d vgv = _mm512_set1_pd(gv);
    const __m512d vbeta = _mm512_set1_pd(beta);
    const __m512d zero = _mm512_setzero_pd();
    const __m512i sbit = _mm512_set1_epi64((int64_t)0x8000000000000000ULL);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512d v = _mm512_loadu_pd(vrow + i);
        __m512d s = _mm512_loadu_pd(sgn + i);
        __m512d z = _mm512_mul_pd(_mm512_mul_pd(_mm512_sub_pd(vgv, v), s),
                                  vbeta);
        __m512d naz = _mm512_castsi512_pd(
            _mm512_or_si512(_mm512_castpd_si512(z), sbit)); /* -|z| */
        __m512d t = p_log1p8(p_exp8(naz));
        __mmask8 pos = _mm512_cmp_pd_mask(z, zero, _CMP_GT_OQ);
        __m512d neg_t = _mm512_castsi512_pd(
            _mm512_xor_si512(_mm512_castpd_si512(t), sbit));
        __m512d res = _mm512_mask_blend_pd(pos, _mm512_sub_pd(z, t), neg_t);
        _mm512_storeu_pd(row + i, res);
    }
    if (i < n) {
        __mmask8 m = (__mmask8)((1u << (n - i)) - 1u);
        __m512d v = _mm512_maskz_loadu_pd(m, vrow + i);
        __m512d s = _mm512_maskz_loadu_pd(m, sgn + i);
        __m512d z = _mm512_mul_pd(_mm512_mul_pd(_mm512_sub_pd(vgv, v), s),
                                  vbeta);
        __m512d naz = _mm512_castsi512_pd(
            _mm512_or_si512(_mm512_castpd_si512(z), sbit));
        __m512d t = p_log1p8(p_exp8(naz));
        __mmask8 pos = _mm512_cmp_pd_mask(z, zero, _CMP_GT_OQ);
        __m512d neg_t = _mm512_castsi512_pd(
            _mm512_xor_si512(_mm512_castpd_si512(t), sbit));
        __m512d res = _mm512_mask_blend_pd(pos, _mm512_sub_pd(z, t), neg_t);
        _mm512_mask_storeu_pd(row + i, m, res);
    }
}

/* np.log via __svml_log8_ha, in place, masked tail. */
__attribute__((target("avx512f")))
static void apply_log_svml(double *x, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(x + i, p_log8(_mm512_loadu_pd(x + i)));
    if (i < n) {
        __mmask8 m = (__mmask8)((1u << (n - i)) - 1u);
        __m512d v = _mm512_maskz_loadu_pd(m, x + i);
        _mm512_mask_storeu_pd(x + i, m, p_log8(v));
    }
}
#endif

static void row_fill_scalar(double gv, const double *vrow, const double *sgn,
                            double beta, double *row, int64_t n)
{
    int64_t i;
    for (i = 0; i < n; i++) {
        double z = ((gv - vrow[i]) * sgn[i]) * beta;
        double t = log1p(exp(-fabs(z)));
        row[i] = (z > 0.0) ? -t : z - t;
    }
}

static void apply_log(double *x, int64_t n)
{
    int64_t i;
#if REPRO_HAVE_AVX512
    if (use_svml) {
        apply_log_svml(x, n);
        return;
    }
#endif
    for (i = 0; i < n; i++)
        x[i] = log(x[i]);
}

/* NumPy's pairwise summation of a contiguous row (numpy/_core/src/umath/
 * loops_utils.h.src semantics): plain accumulation below 8 elements, 8
 * partial accumulators up to 128, then halving recursion with the split
 * point rounded down to a multiple of 8. */
static double pw_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        int64_t i;
        for (i = 0; i < n; i++)
            res += a[i];
        return res;
    }
    if (n <= 128) {
        double r[8];
        int64_t i;
        for (i = 0; i < 8; i++)
            r[i] = a[i];
        for (i = 8; i + 8 <= n; i += 8) {
            r[0] += a[i];
            r[1] += a[i + 1];
            r[2] += a[i + 2];
            r[3] += a[i + 3];
            r[4] += a[i + 4];
            r[5] += a[i + 5];
            r[6] += a[i + 6];
            r[7] += a[i + 7];
        }
        {
            double res = ((r[0] + r[1]) + (r[2] + r[3]))
                       + ((r[4] + r[5]) + (r[6] + r[7]));
            for (; i < n; i++)
                res += a[i];
            return res;
        }
    }
    {
        int64_t n2 = n / 2;
        n2 -= n2 % 8;
        return pw_sum(a, n2) + pw_sum(a + n2, n - n2);
    }
}

int repro_native_init(const char *umath_path, int want_svml)
{
    if (want_svml) {
#if REPRO_HAVE_AVX512
        void *handle;
        if (!__builtin_cpu_supports("avx512f"))
            return -3;
        handle = dlopen(umath_path, RTLD_NOW | RTLD_LOCAL);
        if (!handle)
            return -1;
        p_exp8 = (svml8_fn)dlsym(handle, "__svml_exp8_ha");
        p_log1p8 = (svml8_fn)dlsym(handle, "__svml_log1p8_ha");
        p_log8 = (svml8_fn)dlsym(handle, "__svml_log8_ha");
        if (!p_exp8 || !p_log1p8 || !p_log8) {
            dlclose(handle);
            return -2;
        }
        use_svml = 1;
        return 1;
#else
        return -4;
#endif
    }
    use_svml = 0;
    return 0;
}

int repro_native_provider(void)
{
    return use_svml;
}

/* The LazySplitKernel._evaluate chunk body for one same-beta chunk:
 * z = ((group_value[r] - values[group_row[r], o]) * sign[o]) * beta,
 * stable log-sigmoid, pairwise row sum, round-half-even quantization. */
int repro_eval_chunk(const double *group_value, const int64_t *group_row,
                     int64_t n_rows, const double *values, int64_t n_obs,
                     const double *sign, double beta, double quantum,
                     double *out)
{
    double *row;
    int64_t r;
    row = (double *)malloc((size_t)(n_obs > 0 ? n_obs : 1) * sizeof(double));
    if (!row)
        return -1;
    for (r = 0; r < n_rows; r++) {
        const double *vrow = values + group_row[r] * n_obs;
        double total;
#if REPRO_HAVE_AVX512
        if (use_svml)
            row_fill_svml(group_value[r], vrow, sign, beta, row, n_obs);
        else
#endif
            row_fill_scalar(group_value[r], vrow, sign, beta, row, n_obs);
        total = pw_sum(row, n_obs);
        out[r] = rint(total / quantum) * quantum;
    }
    free(row);
    return 0;
}

/* StatsArrays.grouped, 1-D: three np.bincount passes fused into one.
 * bincount accumulates sequentially in index order, which interleaving
 * the three accumulators preserves per accumulator. */
int repro_grouped_1d(const double *vals, int64_t n, const int64_t *labels,
                     int64_t n_groups, double *count, double *total,
                     double *sumsq)
{
    int64_t i;
    memset(count, 0, (size_t)n_groups * sizeof(double));
    memset(total, 0, (size_t)n_groups * sizeof(double));
    memset(sumsq, 0, (size_t)n_groups * sizeof(double));
    for (i = 0; i < n; i++) {
        int64_t g = labels[i];
        double v = vals[i];
        if (g < 0 || g >= n_groups)
            return -2;
        count[g] += 1.0;
        total[g] += v;
        sumsq[g] += v * v;
    }
    return 0;
}

/* StatsArrays.grouped, 2-D over axis=1: column sums replicate
 * vals.sum(axis=0) — sequential row accumulation for cols > 1; for
 * cols == 1 NumPy reduces the contiguous column pairwise — then one
 * bincount pass over the columns. */
int repro_grouped_2d(const double *vals, int64_t rows, int64_t cols,
                     const int64_t *labels, int64_t n_groups, double *count,
                     double *total, double *sumsq)
{
    double *colsum, *colsumsq;
    int64_t r, o;
    memset(count, 0, (size_t)n_groups * sizeof(double));
    memset(total, 0, (size_t)n_groups * sizeof(double));
    memset(sumsq, 0, (size_t)n_groups * sizeof(double));
    if (cols == 0)
        return 0;
    for (o = 0; o < cols; o++)
        if (labels[o] < 0 || labels[o] >= n_groups)
            return -2;
    colsum = (double *)malloc((size_t)cols * 2 * sizeof(double));
    if (!colsum)
        return -1;
    colsumsq = colsum + cols;
    if (cols == 1) {
        double *sq = (double *)malloc((size_t)(rows > 0 ? rows : 1)
                                      * sizeof(double));
        if (!sq) {
            free(colsum);
            return -1;
        }
        for (r = 0; r < rows; r++)
            sq[r] = vals[r] * vals[r];
        colsum[0] = pw_sum(vals, rows);
        colsumsq[0] = pw_sum(sq, rows);
        free(sq);
    } else {
        for (o = 0; o < cols; o++) {
            colsum[o] = 0.0;
            colsumsq[o] = 0.0;
        }
        for (r = 0; r < rows; r++) {
            const double *vrow = vals + r * cols;
            for (o = 0; o < cols; o++) {
                double v = vrow[o];
                colsum[o] += v;
                colsumsq[o] += v * v;
            }
        }
    }
    for (o = 0; o < cols; o++) {
        int64_t g = labels[o];
        count[g] += (double)rows;
        total[g] += colsum[o];
        sumsq[g] += colsumsq[o];
    }
    free(colsum);
    return 0;
}

/* normal_gamma.log_marginal minus the gammaln(alpha_N) term, which the
 * caller computes with SciPy and passes in.  Every expression mirrors the
 * NumPy path's evaluation order; the two np.log calls go through the
 * active transcendental provider in blocks. */
int repro_log_marginal(const double *n, const double *s, const double *q,
                       const double *lgam_alpha_n, int64_t size, double mu0,
                       double lambda0, double alpha0, double beta0,
                       double log_lambda0, double log_beta0,
                       double lgamma_alpha0, double log_2pi, double *out)
{
    enum { BLOCK = 512 };
    double lam_n[BLOCK], beta_n[BLOCK];
    int64_t start, j;
    for (start = 0; start < size; start += BLOCK) {
        int64_t m = size - start;
        if (m > BLOCK)
            m = BLOCK;
        for (j = 0; j < m; j++) {
            int64_t i = start + j;
            double nn = n[i];
            double n_safe = (nn > 0.0) ? nn : 1.0;
            double xbar = s[i] / n_safe;
            double cs = q[i] - (n_safe * xbar) * xbar;
            /* np.maximum(cs, 0.0): NaN propagates, unlike fmax. */
            double ss = (cs > 0.0) ? cs : ((cs != cs) ? cs : 0.0);
            double diff = xbar - mu0;
            lam_n[j] = lambda0 + nn;
            beta_n[j] = (beta0 + ss / 2.0)
                      + ((((lambda0 * nn) * diff) * diff) / (2.0 * lam_n[j]));
        }
        apply_log(lam_n, m);
        apply_log(beta_n, m);
        for (j = 0; j < m; j++) {
            int64_t i = start + j;
            double nn = n[i];
            double alpha_n = alpha0 + nn / 2.0;
            double val = ((((lgam_alpha_n[i] - lgamma_alpha0)
                            + alpha0 * log_beta0)
                           - alpha_n * beta_n[j])
                          + 0.5 * (log_lambda0 - lam_n[j]))
                         - (nn / 2.0) * log_2pi;
            out[i] = (nn > 0.0) ? val : 0.0;
        }
    }
    return 0;
}
"""

ffibuilder.cdef(CDEF)
ffibuilder.set_source(
    "repro._native._native_kernel",
    CSOURCE,
    libraries=["m", "dl"],
)

if __name__ == "__main__":  # pragma: no cover - manual AOT build entry
    ffibuilder.compile(verbose=True)
