"""Native-compiled split-scoring kernels, certified against NumPy at load.

``load()`` returns a :class:`NativeKernels` handle (or ``None`` when the
backend is unavailable) and is what ``repro.scoring.kernel`` consults when
``ParallelConfig.kernel_backend`` asks for ``"native"`` or ``"auto"``.
Acquisition order:

1. ``REPRO_NATIVE_DISABLE`` in the environment disables the backend
   outright (the no-toolchain CI job and the documented escape hatch).
2. A prebuilt ``repro._native._native_kernel`` extension (installed via
   ``REPRO_BUILD_NATIVE=1 pip install .``) is imported if present.
3. Otherwise the cffi recipe in :mod:`repro._native._build` is compiled on
   demand into a per-user cache directory keyed by the source hash and
   toolchain, then imported from there.  The finished shared object is
   moved into place with an atomic rename, so concurrent ``spawn`` pool
   workers race benignly: the first build wins, everyone loads the same
   file, and later processes skip the compile entirely.  Workers receive
   no pickled state — each process resolves the module at module level
   from the same deterministic path.
4. The compiled code picks a transcendental provider — the SVML kernels
   ``dlsym``-ed out of NumPy's own ``_multiarray_umath`` extension, or
   scalar libm — and **self-certifies**: a probe battery compares the
   native evaluator, grouped statistics, and normal-gamma tail against the
   NumPy implementations bit for bit.  A provider that fails certification
   is rejected; if none survives, the backend reports unavailable and the
   ``"auto"`` setting falls back to NumPy.

Every ``availability()`` status distinguishes *expected* absence (no cffi,
no C compiler, explicitly disabled) from *failure* (build error, import
error, certification mismatch); the kernel-backend resolver only warns on
the latter.  All exposed entry points release the GIL for the duration of
the C call (cffi's calling convention), so chunk evaluation overlaps with
other threads.
"""

from __future__ import annotations

import hashlib
import math
import os
import shutil
import sys
import sysconfig
import tempfile

import numpy as np

#: loader result cache: (status, detail, provider, kernels-or-None)
_RESULT: tuple[str, str, str | None, "NativeKernels | None"] | None = None

#: statuses that mean "tried and failed" rather than "expectedly absent" —
#: the auto resolver warns once for these only
FAILURE_STATUSES = frozenset(
    {"build-failed", "load-failed", "init-failed", "certification-failed"}
)


class NativeKernels:
    """Typed wrapper over the certified cffi extension.

    All array arguments must be C-contiguous ``float64``/``int64``; the
    callers in ``repro.scoring`` guarantee that.  Methods mirror the NumPy
    expressions they replace and are bit-identical to them (enforced by
    :func:`_certify` before this object is ever handed out).
    """

    def __init__(self, ffi, lib, provider: str) -> None:
        self._ffi = ffi
        self._lib = lib
        self.provider = provider

    def _dp(self, arr: np.ndarray):
        return self._ffi.cast("double *", arr.ctypes.data)

    def _ip(self, arr: np.ndarray):
        return self._ffi.cast("int64_t *", arr.ctypes.data)

    def eval_chunk(
        self,
        group_value: np.ndarray,
        group_row: np.ndarray,
        values: np.ndarray,
        sign: np.ndarray,
        beta: float,
        quantum: float,
        out: np.ndarray,
    ) -> None:
        """Quantized log-sigmoid row scores for one same-beta chunk."""
        rc = self._lib.repro_eval_chunk(
            self._dp(group_value),
            self._ip(group_row),
            group_value.shape[0],
            self._dp(values),
            values.shape[1],
            self._dp(sign),
            float(beta),
            float(quantum),
            self._dp(out),
        )
        if rc:
            raise MemoryError("native evaluation chunk allocation failed")

    def grouped(
        self, vals: np.ndarray, labels: np.ndarray, n_groups: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Fused per-group (count, total, sumsq), or ``None`` when a label
        falls outside ``[0, n_groups)`` (the caller's NumPy path then keeps
        ``np.bincount``'s implicit-widening semantics)."""
        count = np.zeros(n_groups)
        total = np.zeros(n_groups)
        sumsq = np.zeros(n_groups)
        if vals.ndim == 1:
            rc = self._lib.repro_grouped_1d(
                self._dp(vals),
                vals.shape[0],
                self._ip(labels),
                n_groups,
                self._dp(count),
                self._dp(total),
                self._dp(sumsq),
            )
        else:
            rc = self._lib.repro_grouped_2d(
                self._dp(vals),
                vals.shape[0],
                vals.shape[1],
                self._ip(labels),
                n_groups,
                self._dp(count),
                self._dp(total),
                self._dp(sumsq),
            )
        if rc == -2:
            return None
        if rc:
            raise MemoryError("native grouped-stats allocation failed")
        return count, total, sumsq

    def log_marginal(
        self,
        n: np.ndarray,
        s: np.ndarray,
        q: np.ndarray,
        lgam_alpha_n: np.ndarray,
        prior,
    ) -> np.ndarray:
        """The vectorized normal-gamma score with ``gammaln(alpha_N)``
        precomputed by the caller (SciPy both ways, so identical)."""
        out = np.empty(n.shape[0])
        self._lib.repro_log_marginal(
            self._dp(n),
            self._dp(s),
            self._dp(q),
            self._dp(lgam_alpha_n),
            n.shape[0],
            prior.mu0,
            prior.lambda0,
            prior.alpha0,
            prior.beta0,
            prior.log_lambda0,
            prior.log_beta0,
            prior.lgamma_alpha0,
            math.log(2.0 * math.pi),
            self._dp(out),
        )
        return out


def _numpy_umath_path() -> str | None:
    """The shared object whose SVML exports the svml provider resolves."""
    try:
        from numpy._core import _multiarray_umath
    except ImportError:  # pragma: no cover - numpy < 2
        try:
            from numpy.core import _multiarray_umath  # type: ignore
        except ImportError:
            return None
    return getattr(_multiarray_umath, "__file__", None)


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    candidates = [cc] if cc else ["cc", "gcc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def _cache_dir(source_key: str) -> str:
    root = os.environ.get("REPRO_NATIVE_CACHE") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-native"
    )
    return os.path.join(root, source_key)


def _source_key() -> str:
    from repro._native import _build

    h = hashlib.sha256()
    h.update(_build.CSOURCE.encode())
    h.update(_build.CDEF.encode())
    h.update(sys.version.encode())
    h.update(np.__version__.encode())
    h.update(sysconfig.get_platform().encode())
    return h.hexdigest()[:16]


def _ext_filename() -> str:
    return "_native_kernel" + (sysconfig.get_config_var("EXT_SUFFIX") or ".so")


def _import_extension(path: str):
    import importlib.util

    # The last dotted component must match the extension's PyInit symbol.
    spec = importlib.util.spec_from_file_location(
        "repro._native._native_kernel", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _build_on_demand() -> str:
    """Compile the cffi recipe into the cache, atomically; return the
    final shared-object path (reused as-is when it already exists)."""
    final_dir = _cache_dir(_source_key())
    final_path = os.path.join(final_dir, _ext_filename())
    if os.path.exists(final_path):
        return final_path
    from repro._native import _build

    os.makedirs(final_dir, exist_ok=True)
    tmpdir = tempfile.mkdtemp(prefix="build-", dir=final_dir)
    try:
        built = _build.ffibuilder.compile(tmpdir=tmpdir, verbose=False)
        # cffi nests the output under the dotted module path; find the .so.
        so_path = built
        if not os.path.isfile(so_path):  # pragma: no cover - cffi variants
            for root, _dirs, files in os.walk(tmpdir):
                for name in files:
                    if name.endswith(
                        (".so", ".dylib", ".pyd")
                    ) and "_native_kernel" in name:
                        so_path = os.path.join(root, name)
        os.replace(so_path, final_path)  # atomic: concurrent builders race benignly
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return final_path


def _reference_row_scores(z: np.ndarray, quantum: float) -> np.ndarray:
    t = np.log1p(np.exp(-np.abs(z)))
    out = np.where(z > 0, -t, z - t)
    scores = out.sum(axis=1)
    return np.round(scores / quantum) * quantum


def _certify(kernels: NativeKernels) -> str | None:
    """Bit-compare the native entry points against NumPy on a probe
    battery; return ``None`` on success or a mismatch description."""
    with np.errstate(all="ignore"):  # probe data overflows by design
        return _certify_battery(kernels)


def _certify_battery(kernels: NativeKernels) -> str | None:
    quantum = 1e-9
    rng = np.random.default_rng(0x5EED)

    # -- eval_chunk vs the NumPy chunk body --------------------------------
    for n_obs in (1, 2, 3, 7, 8, 9, 16, 17, 129, 150):
        for scale in (1.0, 40.0):
            n_parents = 3
            values = np.ascontiguousarray(
                rng.normal(scale=scale, size=(n_parents, n_obs))
            )
            if n_obs >= 8:  # duplicate-heavy + special values
                values[0, :4] = (0.0, -0.0, values[0, 4], values[0, 4])
                values[1, -2:] = (1e308, -1e308)
                values[2, 0] = 5e-324
            sign = np.ascontiguousarray(
                np.where(rng.random(n_obs) < 0.5, 1.0, -1.0)
            )
            n_rows = 5
            group_row = np.ascontiguousarray(
                rng.integers(0, n_parents, size=n_rows)
            )
            group_value = np.ascontiguousarray(
                values[group_row, rng.integers(0, n_obs, size=n_rows)]
            )
            for beta in (0.25, 1.0, 16.0):
                diff = group_value[:, None] - values[group_row]
                z = (sign * diff) * beta
                want = _reference_row_scores(z, quantum)
                got = np.empty(n_rows)
                kernels.eval_chunk(
                    group_value, group_row, values, sign, beta, quantum, got
                )
                if not np.array_equal(got, want, equal_nan=True):
                    return f"eval_chunk mismatch at n_obs={n_obs}, beta={beta}"

    # -- grouped stats vs the np.bincount formulas -------------------------
    for rows, cols in (
        (1, 6), (5, 1), (200, 1), (7, 30), (64, 13), (0, 4), (3000, 3),
    ):
        vals = np.ascontiguousarray(rng.normal(scale=1e3, size=(rows, cols)))
        labels = np.ascontiguousarray(rng.integers(0, 3, size=cols))
        got = kernels.grouped(vals, labels, 3)
        want_count = rows * np.bincount(labels, minlength=3).astype(np.float64)
        want_total = np.bincount(labels, weights=vals.sum(axis=0), minlength=3)
        want_sumsq = np.bincount(
            labels, weights=(vals * vals).sum(axis=0), minlength=3
        )
        if got is None or not all(
            np.array_equal(g, w)
            for g, w in zip(got, (want_count, want_total, want_sumsq))
        ):
            return f"grouped_2d mismatch at shape ({rows}, {cols})"
        flat = np.ascontiguousarray(rng.normal(size=max(rows, 1) * cols))
        labels1 = np.ascontiguousarray(rng.integers(0, 4, size=flat.size))
        got1 = kernels.grouped(flat, labels1, 4)
        want1 = (
            np.bincount(labels1, minlength=4).astype(np.float64),
            np.bincount(labels1, weights=flat, minlength=4),
            np.bincount(labels1, weights=flat * flat, minlength=4),
        )
        if got1 is None or not all(
            np.array_equal(g, w) for g, w in zip(got1, want1)
        ):
            return "grouped_1d mismatch"

    # -- log_marginal vs the NumPy expression ------------------------------
    from scipy.special import gammaln

    class _Prior:
        mu0, lambda0, alpha0, beta0 = 0.0, 0.1, 0.1, 0.1
        log_lambda0 = math.log(0.1)
        log_beta0 = math.log(0.1)
        lgamma_alpha0 = math.lgamma(0.1)

    prior = _Prior()
    for size in (1, 7, 8, 9, 511, 513):
        n = np.ascontiguousarray(
            rng.integers(0, 40, size=size).astype(np.float64)
        )
        s = np.ascontiguousarray(rng.normal(scale=10.0, size=size))
        q = np.ascontiguousarray(np.abs(rng.normal(scale=100.0, size=size)))
        n_safe = np.where(n > 0, n, 1.0)
        xbar = s / n_safe
        ss = np.maximum(q - n_safe * xbar * xbar, 0.0)
        lam_n = prior.lambda0 + n
        alpha_n = prior.alpha0 + n / 2.0
        d = xbar - prior.mu0
        beta_n = prior.beta0 + ss / 2.0 + prior.lambda0 * n * d * d / (2.0 * lam_n)
        want = (
            gammaln(alpha_n)
            - prior.lgamma_alpha0
            + prior.alpha0 * prior.log_beta0
            - alpha_n * np.log(beta_n)
            + 0.5 * (prior.log_lambda0 - np.log(lam_n))
            - (n / 2.0) * math.log(2.0 * math.pi)
        )
        want = np.where(n > 0, want, 0.0)
        got = kernels.log_marginal(
            n, s, q, np.ascontiguousarray(gammaln(alpha_n)), prior
        )
        if not np.array_equal(got, want, equal_nan=True):
            return f"log_marginal mismatch at size {size}"
    return None


def _load_uncached() -> tuple[str, str, str | None, NativeKernels | None]:
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        return "disabled", "REPRO_NATIVE_DISABLE is set", None, None

    module = None
    try:  # a prebuilt installed extension wins
        from repro._native import _native_kernel as module  # type: ignore
    except ImportError:
        pass

    if module is None:
        try:
            import cffi  # noqa: F401
        except ImportError:
            return "no-cffi", "cffi is not installed", None, None
        if _find_compiler() is None:
            return "no-compiler", "no C compiler on PATH", None, None
        try:
            path = _build_on_demand()
        except Exception as exc:
            return "build-failed", f"{type(exc).__name__}: {exc}", None, None
        try:
            module = _import_extension(path)
        except Exception as exc:
            return "load-failed", f"{type(exc).__name__}: {exc}", None, None

    ffi, lib = module.ffi, module.lib
    detail = ""
    for provider in ("svml", "libm"):
        if provider == "svml":
            umath = _numpy_umath_path()
            if umath is None:
                detail = "numpy umath shared object not found; "
                continue
            rc = lib.repro_native_init(umath.encode(), 1)
            if rc != 1:
                detail += f"svml init failed (rc={rc}); "
                continue
        else:
            lib.repro_native_init(b"", 0)
        kernels = NativeKernels(ffi, lib, provider)
        try:
            mismatch = _certify(kernels)
        except Exception as exc:  # pragma: no cover - probe crash
            mismatch = f"{type(exc).__name__}: {exc}"
        if mismatch is None:
            return "native", f"provider={provider}", provider, kernels
        detail += f"{provider}: {mismatch}; "
    return "certification-failed", detail.strip("; "), None, None


def load() -> NativeKernels | None:
    """The certified native kernels, or ``None`` (cached per process)."""
    global _RESULT
    if _RESULT is None:
        _RESULT = _load_uncached()
    return _RESULT[3]


def availability() -> dict:
    """Loader outcome: ``status``/``detail``/``provider`` (forces a load)."""
    load()
    status, detail, provider, _kernels = _RESULT
    return {"status": status, "detail": detail, "provider": provider}


def invalidate() -> None:
    """Drop the cached loader outcome (tests flip env knobs around this)."""
    global _RESULT
    _RESULT = None
