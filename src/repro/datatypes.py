"""Core data types shared across the learner, parallel engine and benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np


class ExpressionMatrix:
    """An ``n x m`` matrix of observations for ``n`` variables.

    Rows are variables (genes), columns are observations (conditions), the
    layout used by Lemon-Tree and the paper.  Values may be any continuous
    measurements; gene-expression matrices are the motivating case.
    """

    def __init__(
        self,
        values: np.ndarray,
        var_names: Sequence[str] | None = None,
        obs_names: Sequence[str] | None = None,
        allow_missing: bool = False,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("expression matrix must be 2-D (variables x observations)")
        if allow_missing:
            # NaN marks a missing measurement; infinities are never data.
            if np.isinf(values).any():
                raise ValueError("expression matrix contains infinite values")
        elif not np.isfinite(values).all():
            raise ValueError(
                "expression matrix contains non-finite values (pass "
                "allow_missing=True to carry NaN missing-data markers)"
            )
        self.values = values
        n, m = values.shape
        self.var_names = (
            list(var_names) if var_names is not None else [f"G{i}" for i in range(n)]
        )
        self.obs_names = (
            list(obs_names) if obs_names is not None else [f"O{j}" for j in range(m)]
        )
        if len(self.var_names) != n:
            raise ValueError("var_names length does not match row count")
        if len(self.obs_names) != m:
            raise ValueError("obs_names length does not match column count")

    @property
    def has_missing(self) -> bool:
        """True when the matrix carries NaN missing-data markers."""
        return bool(np.isnan(self.values).any())

    def missing_mask(self) -> np.ndarray:
        """Boolean mask of missing (NaN) entries."""
        return np.isnan(self.values)

    def impute_missing(self, strategy: str = "row_mean") -> "ExpressionMatrix":
        """A complete matrix with missing entries filled in.

        ``row_mean`` replaces each NaN with its variable's observed mean
        (the variable's grand expression level — the neutral value under
        the row-pooled normal-gamma model); ``zero`` fills with 0.0.  A
        variable with no observed value at all imputes to 0.0.  The result
        never contains NaN, so it is accepted by every scoring path.
        """
        if strategy not in ("row_mean", "zero"):
            raise ValueError("strategy must be 'row_mean' or 'zero'")
        mask = np.isnan(self.values)
        if not mask.any():
            return ExpressionMatrix(
                self.values.copy(), self.var_names, self.obs_names
            )
        filled = self.values.copy()
        if strategy == "row_mean":
            observed = np.where(mask, 0.0, filled)
            counts = (~mask).sum(axis=1)
            means = np.divide(
                observed.sum(axis=1),
                counts,
                out=np.zeros(self.n_vars, dtype=np.float64),
                where=counts > 0,
            )
            fill = np.broadcast_to(means[:, None], filled.shape)
        else:
            fill = np.zeros_like(filled)
        filled[mask] = fill[mask]
        return ExpressionMatrix(filled, self.var_names, self.obs_names)

    @property
    def n_vars(self) -> int:
        return self.values.shape[0]

    @property
    def n_obs(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    def subsample(self, n_vars: int | None = None, n_obs: int | None = None) -> "ExpressionMatrix":
        """The first ``n_vars`` variables x first ``n_obs`` observations.

        This mirrors the paper's construction of smaller data sets from the
        complete yeast matrix ("the first n variables and the first m
        observations", Section 5.2.2).
        """
        n = self.n_vars if n_vars is None else int(n_vars)
        m = self.n_obs if n_obs is None else int(n_obs)
        if not (0 < n <= self.n_vars and 0 < m <= self.n_obs):
            raise ValueError(f"subsample {n}x{m} out of range for {self.shape}")
        return ExpressionMatrix(
            self.values[:n, :m].copy(),
            self.var_names[:n],
            self.obs_names[:m],
            allow_missing=True,
        )

    def standardized(self) -> "ExpressionMatrix":
        """Row-standardize (zero mean, unit variance per variable)."""
        if self.has_missing:
            raise ValueError(
                "cannot standardize a matrix with missing values; call "
                "impute_missing() first"
            )
        mean = self.values.mean(axis=1, keepdims=True)
        std = self.values.std(axis=1, keepdims=True)
        std[std == 0] = 1.0
        return ExpressionMatrix(
            (self.values - mean) / std, self.var_names, self.obs_names
        )

    def __repr__(self) -> str:
        return f"ExpressionMatrix({self.n_vars} vars x {self.n_obs} obs)"


@dataclass(frozen=True)
class Split:
    """A parent split assigned to a regression-tree node."""

    parent: int  # variable index of the candidate parent
    value: float  # split value
    node_id: int  # internal node the split is assigned to
    posterior: float  # normalized posterior probability at the node
    n_obs: int  # observations at the node (the parent-score weight)


@dataclass
class TreeNode:
    """A node of a binary regression tree over observations."""

    node_id: int
    observations: np.ndarray  # sorted observation indices at this node
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    #: splits selected by posterior-weighted sampling (internal nodes only)
    weighted_splits: list[Split] = field(default_factory=list)
    #: splits selected uniformly at random (internal nodes only)
    uniform_splits: list[Split] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def internal_nodes(self) -> Iterator["TreeNode"]:
        """Yield internal nodes in deterministic (pre-order) order."""
        if self.is_leaf:
            return
        yield self
        assert self.left is not None and self.right is not None
        yield from self.left.internal_nodes()
        yield from self.right.internal_nodes()

    def leaves(self) -> Iterator["TreeNode"]:
        if self.is_leaf:
            yield self
            return
        assert self.left is not None and self.right is not None
        yield from self.left.leaves()
        yield from self.right.leaves()

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass
class RegressionTree:
    """One sampled regression tree for a module."""

    module_id: int
    root: TreeNode

    def internal_nodes(self) -> list[TreeNode]:
        return list(self.root.internal_nodes())

    def n_leaves(self) -> int:
        return sum(1 for _ in self.root.leaves())


@dataclass
class Module:
    """A module: a set of variables sharing parents and CPD."""

    module_id: int
    members: list[int]
    trees: list[RegressionTree] = field(default_factory=list)
    #: parent variable -> score, from posterior-weighted split selection
    weighted_parents: dict[int, float] = field(default_factory=dict)
    #: parent variable -> score, from uniform split selection (the paper's
    #: random control used to assess parent significance)
    uniform_parents: dict[int, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.members)


class ModuleNetwork:
    """A learned module network.

    Holds the module assignment function, per-module regression trees and
    parent scores.  As in the paper, acyclicity is *not* enforced;
    :meth:`module_graph` exposes the (possibly cyclic) module digraph and
    :meth:`feedback_edges` reports edges participating in cycles.
    """

    def __init__(
        self,
        modules: list[Module],
        var_names: Sequence[str],
        n_obs: int,
    ) -> None:
        self.modules = modules
        self.var_names = list(var_names)
        self.n_obs = int(n_obs)
        self._assignment: dict[int, int] = {}
        for module in modules:
            for var in module.members:
                if var in self._assignment:
                    raise ValueError(f"variable {var} assigned to two modules")
                self._assignment[var] = module.module_id

    @property
    def n_modules(self) -> int:
        return len(self.modules)

    @property
    def n_vars(self) -> int:
        return len(self.var_names)

    def assignment(self, var: int) -> int | None:
        """The module id of ``var`` (None if unassigned)."""
        return self._assignment.get(var)

    def assignment_labels(self) -> np.ndarray:
        """Module id per variable; -1 for unassigned variables."""
        labels = np.full(self.n_vars, -1, dtype=np.int64)
        for var, mod in self._assignment.items():
            labels[var] = mod
        return labels

    def module_graph(self):
        """The module digraph: edge ``M_j -> M_k`` iff some member of
        ``M_j`` is a parent of ``M_k`` (Section 2.1)."""
        import networkx as nx

        graph = nx.DiGraph()
        for module in self.modules:
            graph.add_node(module.module_id, size=module.size)
        for module in self.modules:
            for parent in module.weighted_parents:
                src = self._assignment.get(parent)
                if src is not None:
                    graph.add_edge(src, module.module_id)
        return graph

    def feedback_edges(self) -> list[tuple[int, int]]:
        """Edges whose removal would make the module graph acyclic."""
        import networkx as nx

        graph = self.module_graph()
        edges: list[tuple[int, int]] = []
        while True:
            try:
                cycle = nx.find_cycle(graph)
            except nx.NetworkXNoCycle:
                return edges
            edge = cycle[0][:2]
            edges.append(edge)
            graph.remove_edge(*edge)

    # -- equality (used by consistency tests) ----------------------------
    def signature(self) -> tuple:
        """A hashable summary capturing assignment, trees, splits, parents."""
        parts = []
        for module in sorted(self.modules, key=lambda mod: mod.module_id):
            tree_sigs = []
            for tree in module.trees:
                node_sigs = []
                for node in tree.internal_nodes():
                    node_sigs.append(
                        (
                            tuple(node.observations.tolist()),
                            tuple(
                                (s.parent, round(s.value, 9), round(s.posterior, 9))
                                for s in node.weighted_splits
                            ),
                            tuple(
                                (s.parent, round(s.value, 9), round(s.posterior, 9))
                                for s in node.uniform_splits
                            ),
                        )
                    )
                tree_sigs.append(tuple(node_sigs))
            parts.append(
                (
                    module.module_id,
                    tuple(module.members),
                    tuple(tree_sigs),
                    tuple(
                        sorted(
                            (p, round(v, 9)) for p, v in module.weighted_parents.items()
                        )
                    ),
                    tuple(
                        sorted(
                            (p, round(v, 9)) for p, v in module.uniform_parents.items()
                        )
                    ),
                )
            )
        return tuple(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModuleNetwork):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash(self.signature())

    def __repr__(self) -> str:
        return (
            f"ModuleNetwork({self.n_modules} modules, {self.n_vars} vars, "
            f"{self.n_obs} obs)"
        )


@dataclass(frozen=True)
class TaskTimes:
    """Wall-time (or simulated-time) breakdown by Lemon-Tree task."""

    ganesh: float
    consensus: float
    modules: float

    @property
    def total(self) -> float:
        return self.ganesh + self.consensus + self.modules

    def fractions(self) -> Mapping[str, float]:
        total = self.total or 1.0
        return {
            "ganesh": self.ganesh / total,
            "consensus": self.consensus / total,
            "modules": self.modules / total,
        }


def compact_labels(labels: Iterable[int]) -> np.ndarray:
    """Relabel cluster ids to 0..K-1 preserving order of first appearance."""
    out = []
    seen: dict[int, int] = {}
    for label in labels:
        if label not in seen:
            seen[label] = len(seen)
        out.append(seen[label])
    return np.asarray(out, dtype=np.int64)
